//! Generative differential fuzzing of the three route-policy evaluators.
//!
//! Each case is a small random scenario — topology, schema, default policy —
//! run through three independent semantics of the policy IR:
//!
//! 1. the **fast path** ([`timepiece_sim::simulate`]), which executes
//!    policies directly over [`Value`]s,
//! 2. the **interpreted path** ([`timepiece_sim::simulate_interpreted`]),
//!    which compiles policies to expression terms and evaluates those, and
//! 3. **Z3** spot checks asserting that the compiled term of a policy (or
//!    merge) applied to a concrete route equals the direct execution.
//!
//! Any disagreement is a bug in one of the evaluators. Failing cases are
//! shrunk (the proptest shim has no shrinking, so the loop is hand-rolled)
//! and written to disk as a minimal scenario file replayable with
//! `repro check --scenario-file`.

use std::time::Duration;

use proptest::TestRng;
use timepiece_algebra::{
    MergeKey, Network, NetworkBuilder, RewriteOp, RouteGuard, RoutePolicy, RouteSchema,
};
use timepiece_core::{NodeAnnotations, Temporal};
use timepiece_expr::{Env, Expr, Type, Value};
use timepiece_nets::BenchInstance;
use timepiece_smt::{check_validity, Validity, Vc};
use timepiece_topology::Topology;

use crate::compile::closing_env;
use crate::export::export_instance;

/// Knobs for a fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// How many random cases to run.
    pub cases: u32,
    /// RNG seed; the same seed replays the same cases.
    pub seed: u64,
    /// Deliberately corrupt one evaluator's output (testing the tester).
    pub sabotage: Option<Sabotage>,
    /// Where to write minimal failing scenario files (skipped when absent).
    pub out_dir: Option<String>,
    /// Simulation step bound per case.
    pub max_steps: usize,
    /// How many Z3 spot checks to discharge per case (0 disables them).
    pub z3_checks: usize,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            cases: 64,
            seed: 0x7177_0000_5eed,
            sabotage: None,
            out_dir: None,
            max_steps: 32,
            z3_checks: 2,
        }
    }
}

/// A deliberate fault injected at an evaluator-output boundary, used to
/// prove the differential harness actually detects disagreements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// Adds one to the first integer field of the interpreted evaluator's
    /// state at some step ≥ 1.
    IntOffByOne,
}

/// One failing case, already shrunk.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Index of the case within the run (0-based).
    pub case_index: u32,
    /// What disagreed.
    pub description: String,
    /// The minimal failing scenario, as a scenario document.
    pub scenario: String,
    /// Where the scenario was written, when `out_dir` was set.
    pub path: Option<String>,
}

/// The outcome of a fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// How many cases ran.
    pub cases: u32,
    /// Shrunk failing cases (empty on a clean run).
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// True when every case agreed across all evaluators.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Case specification: pure data, so it can be shrunk and serialized
// ---------------------------------------------------------------------------

/// Topology shapes the generator draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TopoKind {
    Path,
    Ring,
    Star,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GuardSpec {
    True,
    IntEq(i64),
    NotIntEq(i64),
    BvEq(u64),
    HasTagX,
    IntEqAndTag(i64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpSpec {
    Inc(i64),
    SetBv(u64),
    SetFlag(bool),
    SetEnum(u8),
    AddTagY,
    RemoveTagX,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ActionSpec {
    Drop,
    Ops(Vec<OpSpec>),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ClauseSpec {
    guard: GuardSpec,
    action: ActionSpec,
}

/// A complete random scenario, as pure data (shrinkable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseSpec {
    topo: TopoKind,
    nodes: usize,
    use_bv: bool,
    use_flag: bool,
    use_enum: bool,
    use_set: bool,
    clauses: Vec<ClauseSpec>,
}

impl GuardSpec {
    fn needs_set(self) -> bool {
        matches!(self, GuardSpec::HasTagX | GuardSpec::IntEqAndTag(_))
    }

    fn needs_bv(self) -> bool {
        matches!(self, GuardSpec::BvEq(_))
    }

    fn guard(self) -> RouteGuard {
        match self {
            GuardSpec::True => RouteGuard::True,
            GuardSpec::IntEq(n) => RouteGuard::IntEq { field: "m0".into(), value: n },
            GuardSpec::NotIntEq(n) => RouteGuard::IntEq { field: "m0".into(), value: n }.not(),
            GuardSpec::BvEq(n) => RouteGuard::BvEq { field: "b0".into(), value: n },
            GuardSpec::HasTagX => RouteGuard::HasTag { field: "tags".into(), tag: "x".into() },
            GuardSpec::IntEqAndTag(n) => RouteGuard::IntEq { field: "m0".into(), value: n }
                .and(RouteGuard::HasTag { field: "tags".into(), tag: "y".into() }),
        }
    }
}

impl OpSpec {
    fn needs_bv(self) -> bool {
        matches!(self, OpSpec::SetBv(_))
    }

    fn needs_flag(self) -> bool {
        matches!(self, OpSpec::SetFlag(_))
    }

    fn needs_enum(self) -> bool {
        matches!(self, OpSpec::SetEnum(_))
    }

    fn needs_set(self) -> bool {
        matches!(self, OpSpec::AddTagY | OpSpec::RemoveTagX)
    }

    fn op(self) -> RewriteOp {
        const VARIANTS: [&str; 3] = ["a", "b", "c"];
        match self {
            OpSpec::Inc(by) => RewriteOp::IncInt { field: "m0".into(), by },
            OpSpec::SetBv(value) => RewriteOp::SetBv { field: "b0".into(), value },
            OpSpec::SetFlag(value) => RewriteOp::SetBool { field: "flag".into(), value },
            OpSpec::SetEnum(i) => {
                RewriteOp::SetEnum { field: "o0".into(), variant: VARIANTS[i as usize % 3].into() }
            }
            OpSpec::AddTagY => RewriteOp::AddTag { field: "tags".into(), tag: "y".into() },
            OpSpec::RemoveTagX => RewriteOp::RemoveTag { field: "tags".into(), tag: "x".into() },
        }
    }
}

impl CaseSpec {
    fn references(
        &self,
        pred: impl Fn(GuardSpec) -> bool,
        op_pred: impl Fn(OpSpec) -> bool,
    ) -> bool {
        self.clauses.iter().any(|c| {
            pred(c.guard)
                || match &c.action {
                    ActionSpec::Drop => false,
                    ActionSpec::Ops(ops) => ops.iter().any(|o| op_pred(*o)),
                }
        })
    }

    fn fields(&self) -> Vec<(String, Type)> {
        let mut fields = vec![("m0".to_owned(), Type::Int)];
        if self.use_bv {
            fields.push(("b0".to_owned(), Type::BitVec(8)));
        }
        if self.use_flag {
            fields.push(("flag".to_owned(), Type::Bool));
        }
        if self.use_enum {
            fields.push(("o0".to_owned(), Type::enumeration("fz-origin", ["a", "b", "c"])));
        }
        if self.use_set {
            fields.push(("tags".to_owned(), Type::set("fz-tags", ["x", "y"])));
        }
        fields
    }

    fn schema(&self) -> RouteSchema {
        let mut keys = vec![MergeKey::Lower("m0".to_owned())];
        if self.use_bv {
            keys.push(MergeKey::Lower("b0".to_owned()));
        }
        if self.use_enum {
            keys.push(MergeKey::RankEnum(
                "o0".to_owned(),
                vec!["a".to_owned(), "b".to_owned(), "c".to_owned()],
            ));
        }
        RouteSchema::new("fz-route", self.fields(), keys)
    }

    fn topology(&self) -> Topology {
        let mut t = Topology::new();
        let nodes: Vec<_> = (0..self.nodes).map(|i| t.add_node(format!("n{i}"))).collect();
        match self.topo {
            TopoKind::Path => {
                for w in nodes.windows(2) {
                    t.add_undirected(w[0], w[1]);
                }
            }
            TopoKind::Ring => {
                for w in nodes.windows(2) {
                    t.add_undirected(w[0], w[1]);
                }
                if self.nodes > 2 {
                    t.add_undirected(nodes[self.nodes - 1], nodes[0]);
                }
            }
            TopoKind::Star => {
                for &leaf in &nodes[1..] {
                    t.add_undirected(nodes[0], leaf);
                }
            }
        }
        t
    }

    fn policy(&self) -> RoutePolicy {
        let mut p = RoutePolicy::new();
        for c in &self.clauses {
            let action = match &c.action {
                ActionSpec::Drop => timepiece_algebra::ClauseAction::Drop,
                ActionSpec::Ops(ops) => {
                    timepiece_algebra::ClauseAction::Rewrite(ops.iter().map(|o| o.op()).collect())
                }
            };
            p = p.when(c.guard.guard(), action);
        }
        p
    }

    fn network(&self) -> Result<Network, String> {
        let schema = self.schema();
        let topology = self.topology();
        let origin = topology.node_by_name("n0").expect("generator always creates n0");
        let init = Expr::constant(Value::some(Value::default_of(schema.payload_type())));
        NetworkBuilder::from_schema(topology, schema)
            .default_policy(self.policy())
            .init(origin, init)
            .build()
            .map_err(|e| format!("generated case does not assemble: {e}"))
    }

    /// The case as an annotated instance (trivial `globally true` property
    /// and interface, so the interesting content is the policy layer).
    fn instance(&self) -> Result<BenchInstance, String> {
        let network = self.network()?;
        let anns = NodeAnnotations::new(network.topology(), Temporal::any());
        Ok(BenchInstance { interface: anns.clone(), property: anns, network })
    }

    /// Serializes the case as a scenario document (replayable with
    /// `repro check --scenario-file`).
    pub fn to_toml(&self) -> Result<String, String> {
        export_instance("fuzz-case", "fuzz", &self.instance()?, self.nodes)
    }
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

fn sample_guard(rng: &mut TestRng, spec: &CaseSpec) -> GuardSpec {
    let mut options = vec![
        GuardSpec::True,
        GuardSpec::IntEq(rng.below(3) as i64),
        GuardSpec::NotIntEq(rng.below(3) as i64),
    ];
    if spec.use_bv {
        options.push(GuardSpec::BvEq(rng.below(4)));
    }
    if spec.use_set {
        options.push(GuardSpec::HasTagX);
        options.push(GuardSpec::IntEqAndTag(rng.below(3) as i64));
    }
    options[rng.below(options.len() as u64) as usize]
}

fn sample_op(rng: &mut TestRng, spec: &CaseSpec) -> OpSpec {
    let mut options = vec![OpSpec::Inc(rng.below(3) as i64)];
    if spec.use_bv {
        options.push(OpSpec::SetBv(rng.below(16)));
    }
    if spec.use_flag {
        options.push(OpSpec::SetFlag(rng.below(2) == 1));
    }
    if spec.use_enum {
        options.push(OpSpec::SetEnum(rng.below(3) as u8));
    }
    if spec.use_set {
        options.push(OpSpec::AddTagY);
        options.push(OpSpec::RemoveTagX);
    }
    options[rng.below(options.len() as u64) as usize]
}

fn sample_case(rng: &mut TestRng) -> CaseSpec {
    let mut spec = CaseSpec {
        topo: match rng.below(3) {
            0 => TopoKind::Path,
            1 => TopoKind::Ring,
            _ => TopoKind::Star,
        },
        nodes: 2 + rng.below(4) as usize,
        use_bv: rng.below(2) == 1,
        use_flag: rng.below(2) == 1,
        use_enum: rng.below(2) == 1,
        use_set: rng.below(2) == 1,
        clauses: Vec::new(),
    };
    let n_clauses = 1 + rng.below(3);
    for _ in 0..n_clauses {
        let guard = sample_guard(rng, &spec);
        let action = if rng.below(4) == 0 {
            ActionSpec::Drop
        } else {
            let n_ops = 1 + rng.below(2);
            ActionSpec::Ops((0..n_ops).map(|_| sample_op(rng, &spec)).collect())
        };
        spec.clauses.push(ClauseSpec { guard, action });
    }
    spec
}

// ---------------------------------------------------------------------------
// Differential checking
// ---------------------------------------------------------------------------

/// Adds one to the first integer found inside `v` (descending through
/// options and records). Returns `None` when `v` holds no integer.
fn bump_first_int(v: &Value) -> Option<Value> {
    match v {
        Value::Int(n) => Some(Value::Int(n + 1)),
        Value::Option { payload, value: Some(inner) } => bump_first_int(inner)
            .map(|b| Value::Option { payload: payload.clone(), value: Some(Box::new(b)) }),
        Value::Record { def, fields } => {
            for (i, f) in fields.iter().enumerate() {
                if let Some(b) = bump_first_int(f) {
                    let mut fields = fields.clone();
                    fields[i] = b;
                    return Some(Value::Record { def: def.clone(), fields });
                }
            }
            None
        }
        _ => None,
    }
}

fn sabotage_states(states: &mut [Vec<Value>]) -> bool {
    for row in states.iter_mut().skip(1) {
        for v in row.iter_mut() {
            if let Some(b) = bump_first_int(v) {
                *v = b;
                return true;
            }
        }
    }
    false
}

/// Runs the fast and interpreted simulators on `network` and compares their
/// full traces; then discharges up to `z3_checks` spot VCs equating the
/// compiled policy/merge terms with direct execution on states drawn from
/// the trace. Returns one description per discrepancy.
pub fn diff_network(
    network: &Network,
    env: &Env,
    max_steps: usize,
    sabotage: Option<Sabotage>,
    z3_checks: usize,
) -> Vec<String> {
    let topology = network.topology();
    let fast = timepiece_sim::simulate(network, env, max_steps);
    let interp = timepiece_sim::simulate_interpreted(network, env, max_steps);
    let mut problems = Vec::new();
    let (fast, interp) = match (fast, interp) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(_), Err(_)) => return problems, // agreeing failures agree
        (Ok(_), Err(e)) => {
            problems.push(format!("fast simulation succeeds but the interpreted one fails: {e}"));
            return problems;
        }
        (Err(e), Ok(_)) => {
            problems.push(format!("interpreted simulation succeeds but the fast one fails: {e}"));
            return problems;
        }
    };

    let mut interp_states = interp.states().to_vec();
    if sabotage == Some(Sabotage::IntOffByOne) {
        sabotage_states(&mut interp_states);
    }

    if fast.converged_at() != interp.converged_at() {
        problems.push(format!(
            "convergence disagreement: fast at {:?}, interpreted at {:?}",
            fast.converged_at(),
            interp.converged_at()
        ));
    }
    'outer: for (t, (fast_state, interp_state)) in
        fast.states().iter().zip(&interp_states).enumerate()
    {
        for v in topology.nodes() {
            let a = &fast_state[v.index()];
            let b = &interp_state[v.index()];
            if a != b {
                problems.push(format!(
                    "state disagreement at node {:?}, step {t}: fast computes {a:?}, \
                     interpreted computes {b:?}",
                    topology.name(v)
                ));
                break 'outer; // one witness is enough; later steps diverge too
            }
        }
    }

    if z3_checks > 0 {
        if let Some(policies) = network.policies() {
            let schema = &policies.schema;
            // draw distinct non-initial routes from the trace as probes
            let mut probes: Vec<Value> = Vec::new();
            for row in fast.states() {
                for v in row {
                    if !probes.contains(v) {
                        probes.push(v.clone());
                    }
                }
            }
            probes.truncate(z3_checks.max(2));
            let timeout = Some(Duration::from_secs(10));
            if let Some(policy) = policies.default_policy.as_ref() {
                for (i, r) in probes.iter().take(z3_checks).enumerate() {
                    let direct = match policy.apply(schema, r, env) {
                        Ok(v) => v,
                        Err(e) => {
                            problems.push(format!("direct policy execution fails on {r:?}: {e}"));
                            continue;
                        }
                    };
                    let compiled = policy.compile(schema, &Expr::constant(r.clone()));
                    let goal = compiled.eq(Expr::constant(direct));
                    match check_validity(&Vc::new(format!("fz-policy-{i}"), vec![], goal), timeout)
                    {
                        Ok(Validity::Valid) => {}
                        Ok(Validity::Invalid(_)) => problems.push(format!(
                            "Z3 refutes policy compile/apply agreement on probe {r:?}"
                        )),
                        Ok(Validity::Unknown(_)) | Err(_) => {}
                    }
                }
            }
            if probes.len() >= 2 {
                let (a, b) = (&probes[0], &probes[1]);
                match schema.merge_value(a, b, env) {
                    Ok(direct) => {
                        let merged = schema
                            .merge_expr(&Expr::constant(a.clone()), &Expr::constant(b.clone()));
                        let goal = merged.eq(Expr::constant(direct));
                        match check_validity(&Vc::new("fz-merge", vec![], goal), timeout) {
                            Ok(Validity::Valid) => {}
                            Ok(Validity::Invalid(_)) => problems.push(format!(
                                "Z3 refutes merge compile/execute agreement on {a:?} vs {b:?}"
                            )),
                            Ok(Validity::Unknown(_)) | Err(_) => {}
                        }
                    }
                    Err(e) => problems.push(format!("direct merge fails on {a:?}, {b:?}: {e}")),
                }
            }
        }
    }

    problems
}

fn diff_spec(spec: &CaseSpec, options: &FuzzOptions) -> Vec<String> {
    let network = match spec.network() {
        Ok(n) => n,
        Err(e) => return vec![e],
    };
    let env = closing_env(&network);
    diff_network(&network, &env, options.max_steps, options.sabotage, options.z3_checks)
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

fn shrink_candidates(spec: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    // remove a clause
    for i in 0..spec.clauses.len() {
        let mut s = spec.clone();
        s.clauses.remove(i);
        out.push(s);
    }
    // remove one op from a rewrite clause
    for (i, c) in spec.clauses.iter().enumerate() {
        if let ActionSpec::Ops(ops) = &c.action {
            for j in 0..ops.len() {
                let mut s = spec.clone();
                let ActionSpec::Ops(ops) = &mut s.clauses[i].action else { unreachable!() };
                ops.remove(j);
                if ops.is_empty() {
                    s.clauses.remove(i);
                }
                out.push(s);
            }
        }
    }
    // simplify a guard to `true`
    for (i, c) in spec.clauses.iter().enumerate() {
        if c.guard != GuardSpec::True {
            let mut s = spec.clone();
            s.clauses[i].guard = GuardSpec::True;
            out.push(s);
        }
    }
    // shrink the topology
    if spec.nodes > 2 {
        let mut s = spec.clone();
        s.nodes -= 1;
        out.push(s);
    }
    if spec.topo != TopoKind::Path {
        let mut s = spec.clone();
        s.topo = TopoKind::Path;
        out.push(s);
    }
    // drop unreferenced optional fields
    if spec.use_bv && !spec.references(GuardSpec::needs_bv, OpSpec::needs_bv) {
        let mut s = spec.clone();
        s.use_bv = false;
        out.push(s);
    }
    if spec.use_flag && !spec.references(|_| false, OpSpec::needs_flag) {
        let mut s = spec.clone();
        s.use_flag = false;
        out.push(s);
    }
    if spec.use_enum && !spec.references(|_| false, OpSpec::needs_enum) {
        let mut s = spec.clone();
        s.use_enum = false;
        out.push(s);
    }
    if spec.use_set && !spec.references(GuardSpec::needs_set, OpSpec::needs_set) {
        let mut s = spec.clone();
        s.use_set = false;
        out.push(s);
    }
    out
}

/// Greedily shrinks a failing case, re-running the differential check on
/// each candidate, until no smaller case still fails.
fn shrink(spec: CaseSpec, options: &FuzzOptions) -> CaseSpec {
    let mut current = spec;
    // bounded: every accepted candidate strictly shrinks the spec
    for _ in 0..256 {
        let next =
            shrink_candidates(&current).into_iter().find(|c| !diff_spec(c, options).is_empty());
        match next {
            Some(c) => current = c,
            None => break,
        }
    }
    current
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Runs `options.cases` random cases, shrinking and (when `out_dir` is set)
/// writing each failure to disk.
pub fn run_fuzz(options: &FuzzOptions) -> FuzzReport {
    let mut rng = TestRng::deterministic(options.seed, "scenario-fuzz");
    let mut failures = Vec::new();
    for case_index in 0..options.cases {
        let spec = sample_case(&mut rng);
        let problems = diff_spec(&spec, options);
        if problems.is_empty() {
            continue;
        }
        let minimal = shrink(spec, options);
        let description = diff_spec(&minimal, options).join("; ");
        let description = if description.is_empty() { problems.join("; ") } else { description };
        let scenario = minimal
            .to_toml()
            .unwrap_or_else(|e| format!("# unserializable case: {e}\n# spec: {minimal:?}\n"));
        let path = options.out_dir.as_ref().map(|dir| {
            let path = format!("{dir}/fuzz-{:#x}-case{case_index}.toml", options.seed);
            if let Err(e) = std::fs::write(&path, &scenario) {
                eprintln!("warning: cannot write {path:?}: {e}");
            }
            path
        });
        failures.push(FuzzFailure { case_index, description, scenario, path });
    }
    FuzzReport { cases: options.cases, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options(sabotage: Option<Sabotage>) -> FuzzOptions {
        FuzzOptions {
            cases: 24,
            seed: 0x5eed,
            sabotage,
            out_dir: None,
            max_steps: 24,
            z3_checks: 0, // keep unit tests solver-free; the CLI smoke uses Z3
        }
    }

    #[test]
    fn honest_evaluators_agree() {
        let report = run_fuzz(&options(None));
        assert_eq!(report.cases, 24);
        assert!(
            report.clean(),
            "expected a clean run, found: {:?}",
            report.failures.iter().map(|f| &f.description).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sabotaged_evaluator_is_caught_and_shrunk() {
        let report = run_fuzz(&options(Some(Sabotage::IntOffByOne)));
        assert!(!report.clean(), "an off-by-one in one evaluator must be detected");
        let failure = &report.failures[0];
        assert!(
            failure.description.contains("disagreement"),
            "description names the disagreement: {}",
            failure.description
        );
        // the shrunk scenario is a real, replayable scenario document
        let compiled = crate::compile::compile_str(&failure.scenario)
            .expect("the minimal failing case recompiles");
        // ... and is genuinely minimal: a sabotage that corrupts every case
        // shrinks to the smallest network the generator can express
        assert_eq!(compiled.network.topology().node_count(), 2);
    }

    #[test]
    fn cases_are_deterministic_per_seed() {
        let mut a = TestRng::deterministic(7, "scenario-fuzz");
        let mut b = TestRng::deterministic(7, "scenario-fuzz");
        for _ in 0..16 {
            assert_eq!(sample_case(&mut a), sample_case(&mut b));
        }
    }
}
