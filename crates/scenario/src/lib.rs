//! Declarative scenario frontend for the Timepiece reproduction.
//!
//! A *scenario file* is a TOML document describing a verification problem —
//! topology, route schema with lexicographic merge keys, per-edge policies,
//! initial routes, temporal property, and either an explicit temporal
//! interface or `infer = true` — that compiles down to the exact same
//! [`timepiece_algebra::Network`] / annotation machinery the built-in
//! benchmarks use, so compiled scenarios run unmodified through sweeps,
//! sharding, the daemon and inference.
//!
//! The crate has four layers:
//!
//! - [`toml`] — a span-tracking parser for the TOML subset scenarios use;
//!   every error carries a line and column.
//! - [`term`] — the s-expression term language for types, route
//!   expressions and temporal formulas (`(until 4 (is-some route) ...)`),
//!   with a printer that inverts the parser.
//! - [`compile`] / [`export`] — document → [`compile::CompiledScenario`]
//!   and instance → document. Round-trips are semantic: terms are printed
//!   from the interned expression graph.
//! - [`fuzz`] — a generative differential fuzzer pitting the policy IR's
//!   three evaluators (value-level simulation, term-level interpretation,
//!   Z3) against each other, with hand-rolled shrinking to a minimal
//!   replayable scenario file.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compile;
pub mod export;
pub mod fuzz;
pub mod term;
pub mod toml;

pub use compile::{closing_env, compile_file, compile_str, CompiledScenario, ScenarioError};
pub use export::export_instance;
pub use fuzz::{run_fuzz, FuzzOptions, FuzzReport, Sabotage};
