//! The term language: s-expressions for [`Expr`], [`Type`] and
//! [`Temporal`], with a printer that round-trips through the parser.
//!
//! Scenario files embed three kinds of terms:
//!
//! * **types** — `bool`, `int`, `(bv 32)`, `(option T)`,
//!   `(enum Name v ...)`, `(record Name (f T) ...)`, `(set Name t ...)`, or
//!   a bare name resolved through the scenario's [`TypeEnv`];
//! * **expressions** — `(and ...)`, `(= a b)`, `(field route lp)`, …, with
//!   the keyword `route` standing for the route the predicate is applied to
//!   and `none-route` for the schema's absent route;
//! * **temporal operators** — `(globally P)`, `(until TAU P Q)`,
//!   `(finally TAU Q)`, `(and Q Q)`, `(or Q Q)`, `(not Q)`.
//!
//! Temporal predicates are closures in `timepiece-core`; the printer makes
//! them textual by applying them to a reserved placeholder variable and
//! printing the resulting term, and the parser rebuilds the closure by
//! substituting the actual route for the placeholder.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use timepiece_core::Temporal;
use timepiece_expr::{Expr, ExprKind, InternId, Type, Value};

/// The reserved variable name the printer applies temporal predicates to.
/// The interpunct keeps it out of the lexical space of scenario-file
/// identifiers, so user terms cannot capture it.
pub const ROUTE_VAR: &str = "·scenario-route";

/// Named types a scenario's terms may refer to.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    /// Named composite types (enum/record/set definitions by name).
    pub types: BTreeMap<String, Type>,
    /// The schema's route type (an option of the payload record), once
    /// known; enables `route` and `none-route`.
    pub route: Option<Type>,
}

impl TypeEnv {
    /// Registers a type under a name (and, recursively, the names of any
    /// composite types it contains).
    pub fn register(&mut self, ty: &Type) {
        match ty {
            Type::Bool | Type::BitVec(_) | Type::Int => {}
            ty if ty.is_option() => {
                if let Some(p) = ty.option_payload() {
                    self.register(p);
                }
            }
            ty => {
                if let Some(def) = ty.enum_def() {
                    self.types.insert(def.name().to_owned(), ty.clone());
                } else if let Some(def) = ty.set_def() {
                    self.types.insert(def.name().to_owned(), ty.clone());
                } else if let Some(def) = ty.record_def() {
                    self.types.insert(def.name().to_owned(), ty.clone());
                    for (_, fty) in def.fields() {
                        self.register(fty);
                    }
                }
            }
        }
    }

    /// The route's payload record type, when a route type is registered.
    pub fn payload(&self) -> Option<&Type> {
        self.route.as_ref().and_then(|r| r.option_payload())
    }
}

// ---------------------------------------------------------------------------
// S-expressions
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum SExp {
    Atom(String),
    List(Vec<SExp>),
}

impl SExp {
    fn atom(&self) -> Option<&str> {
        match self {
            SExp::Atom(s) => Some(s),
            SExp::List(_) => None,
        }
    }

    fn render(&self, out: &mut String) {
        match self {
            SExp::Atom(s) => out.push_str(s),
            SExp::List(items) => {
                out.push('(');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    item.render(out);
                }
                out.push(')');
            }
        }
    }
}

fn tokenize(src: &str) -> Result<Vec<String>, String> {
    let mut toks = Vec::new();
    let mut cur = String::new();
    for c in src.chars() {
        match c {
            '(' | ')' => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
                toks.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        toks.push(cur);
    }
    if toks.is_empty() {
        return Err("empty term".to_owned());
    }
    Ok(toks)
}

fn parse_sexp(src: &str) -> Result<SExp, String> {
    let toks = tokenize(src)?;
    let mut pos = 0;
    let exp = parse_one(&toks, &mut pos)?;
    if pos != toks.len() {
        return Err(format!("trailing input after term: {:?}", toks[pos]));
    }
    Ok(exp)
}

fn parse_one(toks: &[String], pos: &mut usize) -> Result<SExp, String> {
    match toks.get(*pos).map(String::as_str) {
        None => Err("unexpected end of term".to_owned()),
        Some("(") => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                match toks.get(*pos).map(String::as_str) {
                    None => return Err("unclosed '('".to_owned()),
                    Some(")") => {
                        *pos += 1;
                        return Ok(SExp::List(items));
                    }
                    Some(_) => items.push(parse_one(toks, pos)?),
                }
            }
        }
        Some(")") => Err("unexpected ')'".to_owned()),
        Some(atom) => {
            *pos += 1;
            Ok(SExp::Atom(atom.to_owned()))
        }
    }
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

/// Parses a type term. Bare names resolve through `env`; structural forms
/// (`(enum Name v ...)` etc.) both define and denote the type.
pub fn parse_type(src: &str, env: &TypeEnv) -> Result<Type, String> {
    type_from_sexp(&parse_sexp(src)?, env)
}

fn type_from_sexp(exp: &SExp, env: &TypeEnv) -> Result<Type, String> {
    match exp {
        SExp::Atom(name) => match name.as_str() {
            "bool" => Ok(Type::Bool),
            "int" => Ok(Type::Int),
            "route" => env.route.clone().ok_or_else(|| "no route type in scope".to_owned()),
            other => env.types.get(other).cloned().ok_or_else(|| format!("unknown type {other:?}")),
        },
        SExp::List(items) => {
            let head = items
                .first()
                .and_then(SExp::atom)
                .ok_or_else(|| "a type starts with a keyword".to_owned())?;
            match head {
                "bv" => {
                    let [_, w] = items.as_slice() else {
                        return Err("(bv WIDTH) takes one argument".to_owned());
                    };
                    let w: u32 = w
                        .atom()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| "bad bitvector width".to_owned())?;
                    Ok(Type::BitVec(w))
                }
                "option" => {
                    let [_, payload] = items.as_slice() else {
                        return Err("(option T) takes one argument".to_owned());
                    };
                    Ok(Type::option(type_from_sexp(payload, env)?))
                }
                "enum" => {
                    let [_, name, variants @ ..] = items.as_slice() else {
                        return Err("(enum Name v ...) needs a name".to_owned());
                    };
                    let name = name.atom().ok_or_else(|| "enum name must be an atom".to_owned())?;
                    let variants: Vec<&str> = variants
                        .iter()
                        .map(|v| v.atom().ok_or_else(|| "enum variants are atoms".to_owned()))
                        .collect::<Result<_, _>>()?;
                    if variants.is_empty() {
                        return Err(format!("enum {name:?} needs at least one variant"));
                    }
                    Ok(Type::enumeration(name, variants))
                }
                "set" => {
                    let [_, name, tags @ ..] = items.as_slice() else {
                        return Err("(set Name t ...) needs a name".to_owned());
                    };
                    let name = name.atom().ok_or_else(|| "set name must be an atom".to_owned())?;
                    let tags: Vec<&str> = tags
                        .iter()
                        .map(|v| v.atom().ok_or_else(|| "set tags are atoms".to_owned()))
                        .collect::<Result<_, _>>()?;
                    Ok(Type::set(name, tags))
                }
                "record" => {
                    let [_, name, fields @ ..] = items.as_slice() else {
                        return Err("(record Name (f T) ...) needs a name".to_owned());
                    };
                    let name =
                        name.atom().ok_or_else(|| "record name must be an atom".to_owned())?;
                    let fields: Vec<(String, Type)> = fields
                        .iter()
                        .map(|f| match f {
                            SExp::List(pair) if pair.len() == 2 => {
                                let fname = pair[0]
                                    .atom()
                                    .ok_or_else(|| "field name must be an atom".to_owned())?;
                                Ok((fname.to_owned(), type_from_sexp(&pair[1], env)?))
                            }
                            _ => Err("record fields are (name TYPE) pairs".to_owned()),
                        })
                        .collect::<Result<_, _>>()?;
                    Ok(Type::record(name, fields))
                }
                other => Err(format!("unknown type constructor {other:?}")),
            }
        }
    }
}

/// Prints a type structurally (self-defining, parses without an
/// environment). Used where a type is *declared*.
pub fn type_decl(ty: &Type) -> String {
    let mut out = String::new();
    type_sexp(ty, true).render(&mut out);
    out
}

/// Prints a type as a reference: composite types appear by name (resolved
/// through the reader's [`TypeEnv`]).
pub fn type_ref(ty: &Type) -> String {
    let mut out = String::new();
    type_sexp(ty, false).render(&mut out);
    out
}

fn type_sexp(ty: &Type, structural: bool) -> SExp {
    match ty {
        Type::Bool => SExp::Atom("bool".to_owned()),
        Type::Int => SExp::Atom("int".to_owned()),
        Type::BitVec(w) => SExp::List(vec![SExp::Atom("bv".to_owned()), SExp::Atom(w.to_string())]),
        ty if ty.is_option() => SExp::List(vec![
            SExp::Atom("option".to_owned()),
            type_sexp(ty.option_payload().expect("option type"), structural),
        ]),
        ty => {
            if let Some(def) = ty.enum_def() {
                if !structural {
                    return SExp::Atom(def.name().to_owned());
                }
                let mut items =
                    vec![SExp::Atom("enum".to_owned()), SExp::Atom(def.name().to_owned())];
                items.extend(def.variants().iter().map(|v| SExp::Atom(v.clone())));
                SExp::List(items)
            } else if let Some(def) = ty.set_def() {
                if !structural {
                    return SExp::Atom(def.name().to_owned());
                }
                let mut items =
                    vec![SExp::Atom("set".to_owned()), SExp::Atom(def.name().to_owned())];
                items.extend(def.universe().iter().map(|t| SExp::Atom(t.clone())));
                SExp::List(items)
            } else if let Some(def) = ty.record_def() {
                if !structural {
                    return SExp::Atom(def.name().to_owned());
                }
                let mut items =
                    vec![SExp::Atom("record".to_owned()), SExp::Atom(def.name().to_owned())];
                items.extend(
                    def.fields().iter().map(|(f, fty)| {
                        SExp::List(vec![SExp::Atom(f.clone()), type_sexp(fty, true)])
                    }),
                );
                SExp::List(items)
            } else {
                unreachable!("every composite type carries a definition")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Values (inside Const terms)
// ---------------------------------------------------------------------------

fn value_sexp(v: &Value) -> SExp {
    match v {
        Value::Bool(b) => SExp::Atom(b.to_string()),
        Value::Int(i) => SExp::Atom(i.to_string()),
        Value::BitVec { width, bits } => SExp::List(vec![
            SExp::Atom("bv".to_owned()),
            SExp::Atom(width.to_string()),
            SExp::Atom(bits.to_string()),
        ]),
        Value::Enum { def, index } => SExp::List(vec![
            SExp::Atom("enum".to_owned()),
            SExp::Atom(def.name().to_owned()),
            SExp::Atom(def.variants()[*index].clone()),
        ]),
        Value::Option { payload, value } => match value {
            None => SExp::List(vec![SExp::Atom("none".to_owned()), type_sexp(payload, false)]),
            Some(inner) => SExp::List(vec![SExp::Atom("some".to_owned()), value_sexp(inner)]),
        },
        Value::Record { def, fields } => {
            let mut items =
                vec![SExp::Atom("record".to_owned()), SExp::Atom(def.name().to_owned())];
            items.extend(fields.iter().map(value_sexp));
            SExp::List(items)
        }
        Value::Set { def, mask } => {
            let mut items = vec![SExp::Atom("set".to_owned()), SExp::Atom(def.name().to_owned())];
            items.extend(
                def.universe()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, t)| SExp::Atom(t.clone())),
            );
            SExp::List(items)
        }
    }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// Parses an expression term. `route` denotes the placeholder route
/// variable (requires `env.route`); composite names resolve through `env`.
pub fn parse_expr(src: &str, env: &TypeEnv) -> Result<Expr, String> {
    expr_from_sexp(&parse_sexp(src)?, env)
}

fn route_placeholder(env: &TypeEnv) -> Result<Expr, String> {
    let ty = env.route.clone().ok_or_else(|| "no route type in scope".to_owned())?;
    Ok(Expr::var(ROUTE_VAR, ty))
}

fn enum_value(env: &TypeEnv, name: &str, variant: &str) -> Result<Value, String> {
    let ty = env.types.get(name).ok_or_else(|| format!("unknown type {name:?}"))?;
    let def = ty.enum_def().ok_or_else(|| format!("{name:?} is not an enum"))?;
    if def.variant_index(variant).is_none() {
        return Err(format!("enum {name:?} has no variant {variant:?}"));
    }
    Ok(Value::enum_variant(def, variant))
}

fn expr_from_sexp(exp: &SExp, env: &TypeEnv) -> Result<Expr, String> {
    match exp {
        SExp::Atom(atom) => match atom.as_str() {
            "true" => Ok(Expr::bool(true)),
            "false" => Ok(Expr::bool(false)),
            "route" => route_placeholder(env),
            "none-route" => {
                let payload = env.payload().ok_or_else(|| "no route type in scope".to_owned())?;
                Ok(Expr::none(payload.clone()))
            }
            n if n.parse::<i128>().is_ok() => Ok(Expr::int(n.parse::<i128>().expect("checked"))),
            other => Err(format!("unknown atom {other:?} in expression")),
        },
        SExp::List(items) => {
            let head = items
                .first()
                .and_then(SExp::atom)
                .ok_or_else(|| "an expression starts with a keyword".to_owned())?;
            let args = &items[1..];
            let sub = |i: usize| expr_from_sexp(&args[i], env);
            let arity = |n: usize| -> Result<(), String> {
                if args.len() == n {
                    Ok(())
                } else {
                    Err(format!("({head} ...) takes {n} argument(s), got {}", args.len()))
                }
            };
            let tag_arg = |i: usize| -> Result<&str, String> {
                args[i].atom().ok_or_else(|| format!("({head} ...) expects an atom"))
            };
            match head {
                "bv" => {
                    arity(2)?;
                    let w: u32 =
                        tag_arg(0)?.parse().map_err(|_| "bad bitvector width".to_owned())?;
                    let bits: u64 =
                        tag_arg(1)?.parse().map_err(|_| "bad bitvector value".to_owned())?;
                    Ok(Expr::bv(bits, w))
                }
                "enum" => {
                    arity(2)?;
                    Ok(Expr::constant(enum_value(env, tag_arg(0)?, tag_arg(1)?)?))
                }
                "set" => {
                    let name = tag_arg(0)?;
                    let ty = env.types.get(name).ok_or_else(|| format!("unknown type {name:?}"))?;
                    let def = ty.set_def().ok_or_else(|| format!("{name:?} is not a set"))?;
                    let tags: Vec<&str> = args[1..]
                        .iter()
                        .map(|t| t.atom().ok_or_else(|| "set tags are atoms".to_owned()))
                        .collect::<Result<_, _>>()?;
                    for tag in &tags {
                        if def.tag_index(tag).is_none() {
                            return Err(format!("set {name:?} has no tag {tag:?}"));
                        }
                    }
                    Ok(Expr::constant(Value::set_of(def, tags)))
                }
                "record" => {
                    let name = tag_arg(0)?;
                    let ty = env.types.get(name).ok_or_else(|| format!("unknown type {name:?}"))?;
                    let def = ty.record_def().ok_or_else(|| format!("{name:?} is not a record"))?;
                    if args.len() - 1 != def.fields().len() {
                        return Err(format!(
                            "record {name:?} has {} fields, got {}",
                            def.fields().len(),
                            args.len() - 1
                        ));
                    }
                    let fields: Vec<Expr> = (1..args.len())
                        .map(|i| expr_from_sexp(&args[i], env))
                        .collect::<Result<_, _>>()?;
                    Ok(Expr::record(def, fields))
                }
                "rec" => {
                    // sugar: the schema's payload record
                    let payload =
                        env.payload().ok_or_else(|| "no route type in scope".to_owned())?;
                    let def = payload.record_def().expect("payload is a record");
                    if args.len() != def.fields().len() {
                        return Err(format!(
                            "the route record has {} fields, got {}",
                            def.fields().len(),
                            args.len()
                        ));
                    }
                    let fields: Vec<Expr> = (0..args.len()).map(sub).collect::<Result<_, _>>()?;
                    Ok(Expr::record(def, fields))
                }
                "none" => {
                    arity(1)?;
                    Ok(Expr::none(type_from_sexp(&args[0], env)?))
                }
                "some" => {
                    arity(1)?;
                    Ok(sub(0)?.some())
                }
                "is-some" => {
                    arity(1)?;
                    Ok(sub(0)?.is_some())
                }
                "get-some" => {
                    arity(1)?;
                    Ok(sub(0)?.get_some())
                }
                "not" => {
                    arity(1)?;
                    Ok(sub(0)?.not())
                }
                "and" => Ok(Expr::and_all(
                    args.iter().map(|a| expr_from_sexp(a, env)).collect::<Result<Vec<_>, _>>()?,
                )),
                "or" => {
                    Ok(Expr::or_all(args.iter().map(|a| expr_from_sexp(a, env)).collect::<Result<
                        Vec<_>,
                        _,
                    >>(
                    )?))
                }
                "=>" => {
                    arity(2)?;
                    Ok(sub(0)?.implies(sub(1)?))
                }
                "ite" => {
                    arity(3)?;
                    Ok(sub(0)?.ite(sub(1)?, sub(2)?))
                }
                "=" => {
                    arity(2)?;
                    Ok(sub(0)?.eq(sub(1)?))
                }
                "<" => {
                    arity(2)?;
                    Ok(sub(0)?.lt(sub(1)?))
                }
                "<=" => {
                    arity(2)?;
                    Ok(sub(0)?.le(sub(1)?))
                }
                "+" => {
                    arity(2)?;
                    Ok(sub(0)?.add(sub(1)?))
                }
                "-" => {
                    arity(2)?;
                    Ok(sub(0)?.sub(sub(1)?))
                }
                "field" => {
                    arity(2)?;
                    Ok(sub(0)?.field(tag_arg(1)?))
                }
                "with-field" => {
                    arity(3)?;
                    Ok(sub(0)?.with_field(tag_arg(1)?, sub(2)?))
                }
                "contains" => {
                    arity(2)?;
                    Ok(sub(0)?.contains(tag_arg(1)?))
                }
                "set-add" => {
                    arity(2)?;
                    Ok(sub(0)?.add_tag(tag_arg(1)?))
                }
                "set-remove" => {
                    arity(2)?;
                    Ok(sub(0)?.remove_tag(tag_arg(1)?))
                }
                "union" => {
                    arity(2)?;
                    Ok(sub(0)?.union(sub(1)?))
                }
                "inter" => {
                    arity(2)?;
                    Ok(sub(0)?.intersect(sub(1)?))
                }
                "var" => {
                    arity(2)?;
                    Ok(Expr::var(tag_arg(0)?, type_from_sexp(&args[1], env)?))
                }
                other => Err(format!("unknown operator {other:?}")),
            }
        }
    }
}

/// Prints an expression as a term the parser reads back. The placeholder
/// route variable prints as `route`.
pub fn expr_term(e: &Expr) -> String {
    let mut memo = HashMap::new();
    let mut out = String::new();
    expr_sexp(e, &mut memo).render(&mut out);
    out
}

fn expr_sexp(e: &Expr, memo: &mut HashMap<InternId, SExp>) -> SExp {
    if let Some(done) = memo.get(&e.node_id()) {
        return done.clone();
    }
    let op = |name: &str, args: Vec<SExp>| {
        let mut items = vec![SExp::Atom(name.to_owned())];
        items.extend(args);
        SExp::List(items)
    };
    let exp = match e.kind() {
        ExprKind::Var(name, ty) if name == ROUTE_VAR => {
            let _ = ty;
            SExp::Atom("route".to_owned())
        }
        ExprKind::Var(name, ty) => op("var", vec![SExp::Atom(name.clone()), type_sexp(ty, false)]),
        ExprKind::Const(v) => value_sexp(v),
        ExprKind::Not(a) => op("not", vec![expr_sexp(a, memo)]),
        ExprKind::And(vs) => op("and", vs.iter().map(|v| expr_sexp(v, memo)).collect()),
        ExprKind::Or(vs) => op("or", vs.iter().map(|v| expr_sexp(v, memo)).collect()),
        ExprKind::Implies(a, b) => op("=>", vec![expr_sexp(a, memo), expr_sexp(b, memo)]),
        ExprKind::Ite(c, t, f) => {
            op("ite", vec![expr_sexp(c, memo), expr_sexp(t, memo), expr_sexp(f, memo)])
        }
        ExprKind::Eq(a, b) => op("=", vec![expr_sexp(a, memo), expr_sexp(b, memo)]),
        ExprKind::Lt(a, b) => op("<", vec![expr_sexp(a, memo), expr_sexp(b, memo)]),
        ExprKind::Le(a, b) => op("<=", vec![expr_sexp(a, memo), expr_sexp(b, memo)]),
        ExprKind::Add(a, b) => op("+", vec![expr_sexp(a, memo), expr_sexp(b, memo)]),
        ExprKind::Sub(a, b) => op("-", vec![expr_sexp(a, memo), expr_sexp(b, memo)]),
        ExprKind::None(ty) => op("none", vec![type_sexp(ty, false)]),
        ExprKind::Some(a) => op("some", vec![expr_sexp(a, memo)]),
        ExprKind::IsSome(a) => op("is-some", vec![expr_sexp(a, memo)]),
        ExprKind::GetSome(a) => op("get-some", vec![expr_sexp(a, memo)]),
        ExprKind::MkRecord(def, fields) => {
            let mut items =
                vec![SExp::Atom("record".to_owned()), SExp::Atom(def.name().to_owned())];
            items.extend(fields.iter().map(|f| expr_sexp(f, memo)));
            SExp::List(items)
        }
        ExprKind::GetField(a, name) => {
            op("field", vec![expr_sexp(a, memo), SExp::Atom(name.clone())])
        }
        ExprKind::WithField(a, name, v) => {
            op("with-field", vec![expr_sexp(a, memo), SExp::Atom(name.clone()), expr_sexp(v, memo)])
        }
        ExprKind::SetContains(a, tag) => {
            op("contains", vec![expr_sexp(a, memo), SExp::Atom(tag.clone())])
        }
        ExprKind::SetAdd(a, tag) => {
            op("set-add", vec![expr_sexp(a, memo), SExp::Atom(tag.clone())])
        }
        ExprKind::SetRemove(a, tag) => {
            op("set-remove", vec![expr_sexp(a, memo), SExp::Atom(tag.clone())])
        }
        ExprKind::SetUnion(a, b) => op("union", vec![expr_sexp(a, memo), expr_sexp(b, memo)]),
        ExprKind::SetInter(a, b) => op("inter", vec![expr_sexp(a, memo), expr_sexp(b, memo)]),
    };
    memo.insert(e.node_id(), exp.clone());
    exp
}

/// Rewrites every occurrence of the free variable `name` in `e` to
/// `replacement`, rebuilding through the smart constructors (memoized on
/// the arena's node ids, so shared subterms are visited once).
pub fn substitute(e: &Expr, name: &str, replacement: &Expr) -> Expr {
    let mut memo = HashMap::new();
    subst(e, name, replacement, &mut memo)
}

fn subst(e: &Expr, name: &str, r: &Expr, memo: &mut HashMap<InternId, Expr>) -> Expr {
    if let Some(done) = memo.get(&e.node_id()) {
        return done.clone();
    }
    let go = |a: &Expr, memo: &mut HashMap<InternId, Expr>| subst(a, name, r, memo);
    let out = match e.kind() {
        ExprKind::Var(n, _) if n == name => r.clone(),
        ExprKind::Var(_, _) | ExprKind::Const(_) | ExprKind::None(_) => e.clone(),
        ExprKind::Not(a) => go(a, memo).not(),
        ExprKind::And(vs) => Expr::and_all(vs.iter().map(|v| go(v, memo)).collect::<Vec<_>>()),
        ExprKind::Or(vs) => Expr::or_all(vs.iter().map(|v| go(v, memo)).collect::<Vec<_>>()),
        ExprKind::Implies(a, b) => go(a, memo).implies(go(b, memo)),
        ExprKind::Ite(c, t, f) => go(c, memo).ite(go(t, memo), go(f, memo)),
        ExprKind::Eq(a, b) => go(a, memo).eq(go(b, memo)),
        ExprKind::Lt(a, b) => go(a, memo).lt(go(b, memo)),
        ExprKind::Le(a, b) => go(a, memo).le(go(b, memo)),
        ExprKind::Add(a, b) => go(a, memo).add(go(b, memo)),
        ExprKind::Sub(a, b) => go(a, memo).sub(go(b, memo)),
        ExprKind::Some(a) => go(a, memo).some(),
        ExprKind::IsSome(a) => go(a, memo).is_some(),
        ExprKind::GetSome(a) => go(a, memo).get_some(),
        ExprKind::MkRecord(def, fields) => {
            let fields: Vec<Expr> = fields.iter().map(|f| go(f, memo)).collect();
            Expr::record(def, fields)
        }
        ExprKind::GetField(a, f) => go(a, memo).field(f.clone()),
        ExprKind::WithField(a, f, v) => {
            let a = go(a, memo);
            let v = go(v, memo);
            a.with_field(f.clone(), v)
        }
        ExprKind::SetContains(a, tag) => go(a, memo).contains(tag.clone()),
        ExprKind::SetAdd(a, tag) => go(a, memo).add_tag(tag.clone()),
        ExprKind::SetRemove(a, tag) => go(a, memo).remove_tag(tag.clone()),
        ExprKind::SetUnion(a, b) => go(a, memo).union(go(b, memo)),
        ExprKind::SetInter(a, b) => go(a, memo).intersect(go(b, memo)),
    };
    memo.insert(e.node_id(), out.clone());
    out
}

// ---------------------------------------------------------------------------
// Temporal operators
// ---------------------------------------------------------------------------

/// Parses a temporal term; predicates close over the parsed body and
/// substitute the applied route for the `route` placeholder.
pub fn parse_temporal(src: &str, env: &TypeEnv) -> Result<Temporal, String> {
    temporal_from_sexp(&parse_sexp(src)?, env)
}

fn predicate_of(body: Expr) -> impl Fn(&Expr) -> Expr + Send + Sync + 'static {
    move |route: &Expr| substitute(&body, ROUTE_VAR, route)
}

fn temporal_from_sexp(exp: &SExp, env: &TypeEnv) -> Result<Temporal, String> {
    let SExp::List(items) = exp else {
        return Err("a temporal operator is a list like (globally P)".to_owned());
    };
    let head = items
        .first()
        .and_then(SExp::atom)
        .ok_or_else(|| "a temporal operator starts with a keyword".to_owned())?;
    let args = &items[1..];
    match (head, args) {
        ("globally", [p]) => Ok(Temporal::globally(predicate_of(expr_from_sexp(p, env)?))),
        ("until", [tau, p, q]) => Ok(Temporal::until(
            expr_from_sexp(tau, env)?,
            predicate_of(expr_from_sexp(p, env)?),
            temporal_from_sexp(q, env)?,
        )),
        ("finally", [tau, q]) => {
            Ok(Temporal::finally(expr_from_sexp(tau, env)?, temporal_from_sexp(q, env)?))
        }
        ("and", [a, b]) => Ok(temporal_from_sexp(a, env)?.and(temporal_from_sexp(b, env)?)),
        ("or", [a, b]) => Ok(temporal_from_sexp(a, env)?.or(temporal_from_sexp(b, env)?)),
        ("not", [a]) => Ok(temporal_from_sexp(a, env)?.not()),
        _ => Err(format!("unknown temporal form ({head} ...) with {} argument(s)", args.len())),
    }
}

/// Prints a temporal operator by applying its predicates to the route
/// placeholder of type `route_ty`.
pub fn temporal_term(q: &Temporal, route_ty: &Type) -> String {
    let route = Expr::var(ROUTE_VAR, route_ty.clone());
    let mut out = String::new();
    temporal_sexp(q, &route).render(&mut out);
    out
}

fn temporal_sexp(q: &Temporal, route: &Expr) -> SExp {
    let mut memo = HashMap::new();
    match q {
        Temporal::Globally(phi) => {
            SExp::List(vec![SExp::Atom("globally".to_owned()), expr_sexp(&phi(route), &mut memo)])
        }
        Temporal::Until(tau, phi, inner) => {
            let body = phi(route);
            // `finally` prints as its sugar when the hold-phase is trivial
            if body.as_const().map(|v| matches!(v, Value::Bool(true))).unwrap_or(false) {
                SExp::List(vec![
                    SExp::Atom("finally".to_owned()),
                    expr_sexp(tau, &mut memo),
                    temporal_sexp(inner, route),
                ])
            } else {
                SExp::List(vec![
                    SExp::Atom("until".to_owned()),
                    expr_sexp(tau, &mut memo),
                    expr_sexp(&body, &mut memo),
                    temporal_sexp(inner, route),
                ])
            }
        }
        Temporal::And(a, b) => SExp::List(vec![
            SExp::Atom("and".to_owned()),
            temporal_sexp(a, route),
            temporal_sexp(b, route),
        ]),
        Temporal::Or(a, b) => SExp::List(vec![
            SExp::Atom("or".to_owned()),
            temporal_sexp(a, route),
            temporal_sexp(b, route),
        ]),
        Temporal::Not(a) => SExp::List(vec![SExp::Atom("not".to_owned()), temporal_sexp(a, route)]),
    }
}

/// Wraps `body` as an `Arc`-wrapped route predicate (substituting the route
/// placeholder on application), for callers building [`Temporal`] variants
/// directly.
pub fn predicate(body: Expr) -> Arc<dyn Fn(&Expr) -> Expr + Send + Sync> {
    Arc::new(predicate_of(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_expr::Env;

    fn bgp_like_env() -> TypeEnv {
        let payload = Type::record(
            "r",
            vec![
                ("lp".to_owned(), Type::BitVec(32)),
                ("len".to_owned(), Type::Int),
                ("origin".to_owned(), Type::enumeration("Origin", ["igp", "egp"])),
                ("comms".to_owned(), Type::set("Comms", ["down", "bte"])),
            ],
        );
        let mut env = TypeEnv::default();
        env.register(&payload);
        env.route = Some(Type::option(payload));
        env
    }

    #[test]
    fn types_roundtrip() {
        let env = bgp_like_env();
        for src in [
            "bool",
            "int",
            "(bv 32)",
            "(option int)",
            "(enum Origin igp egp)",
            "(set Comms down bte)",
            "(record r (lp (bv 32)) (len int) (origin (enum Origin igp egp)) (set Comms down bte))",
        ] {
            // a structural type prints back to itself (after normalizing
            // through parse → print)
            if let Ok(ty) = parse_type(src, &env) {
                let printed = type_decl(&ty);
                let again = parse_type(&printed, &env).unwrap();
                assert_eq!(again, ty, "{src} → {printed}");
            }
        }
        // bare names resolve through the env
        assert!(parse_type("Origin", &env).unwrap().enum_def().is_some());
        assert!(parse_type("r", &env).unwrap().record_def().is_some());
        assert!(parse_type("nope", &env).is_err());
    }

    #[test]
    fn exprs_roundtrip_and_evaluate() {
        let env = bgp_like_env();
        let e = parse_expr("(ite (is-some route) (< (field (get-some route) len) 4) false)", &env)
            .unwrap();
        let text = expr_term(&e);
        let again = parse_expr(&text, &env).unwrap();
        assert_eq!(again, e, "{text}");
        assert!(text.contains("route"), "{text}");
    }

    #[test]
    fn rec_sugar_builds_the_payload_record() {
        let env = bgp_like_env();
        let e =
            parse_expr("(some (rec (bv 32 100) 0 (enum Origin igp) (set Comms)))", &env).unwrap();
        // the sugar expands to the payload record of the schema
        let ty = e.type_of().unwrap();
        assert_eq!(&ty, env.route.as_ref().unwrap(), "{e:?}");
        let text = expr_term(&e);
        assert_eq!(parse_expr(&text, &env).unwrap(), e, "{text}");
    }

    #[test]
    fn temporal_roundtrips_semantically() {
        let env = bgp_like_env();
        let q = parse_temporal("(finally 4 (globally (is-some route)))", &env).unwrap();
        let route_ty = env.route.clone().unwrap();
        let text = temporal_term(&q, &route_ty);
        let q2 = parse_temporal(&text, &env).unwrap();
        // compare by instantiation at a few times/routes
        let r = Expr::var("r", route_ty.clone());
        let t = Expr::var("t", Type::Int);
        let payload = env.payload().unwrap().clone();
        let mut environment = Env::new();
        for time in [0i64, 3, 4, 10] {
            for route in [Value::none(payload.clone()), Value::default_of(&route_ty)] {
                environment.bind("t", Value::int(time));
                environment.bind("r", route);
                let a = q.at(&t, &r).eval_bool(&environment).unwrap();
                let b = q2.at(&t, &r).eval_bool(&environment).unwrap();
                assert_eq!(a, b, "time {time}: {text}");
            }
        }
    }

    #[test]
    fn substitute_replaces_the_placeholder() {
        let env = bgp_like_env();
        let body = parse_expr("(is-some route)", &env).unwrap();
        let replaced = substitute(&body, ROUTE_VAR, &Expr::none(env.payload().unwrap().clone()));
        assert_eq!(replaced.as_const(), Some(&Value::Bool(false)));
    }

    #[test]
    fn parse_errors_are_descriptive() {
        let env = bgp_like_env();
        assert!(parse_expr("(frob 1)", &env).unwrap_err().contains("unknown operator"));
        assert!(parse_expr("(and (or", &env).unwrap_err().contains("unclosed"));
        assert!(parse_expr("(enum Origin nope)", &env).unwrap_err().contains("no variant"));
        assert!(parse_temporal("route", &env).unwrap_err().contains("temporal"));
    }
}
