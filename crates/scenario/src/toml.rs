//! A span-tracking parser for the TOML subset scenario files use.
//!
//! Supported: `[table.path]` headers, `[[array.of.tables]]` headers,
//! `key = value` bindings with bare (`[A-Za-z0-9_-]+`) or quoted keys, and
//! values that are basic strings, integers, booleans, or (possibly
//! multi-line, possibly nested) arrays. `#` starts a comment. Everything
//! parsed carries a [`Span`] so later passes can report *where* a scenario
//! is wrong, not just that it is.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}", self.line, self.col)
    }
}

/// A value paired with the position it was parsed at.
#[derive(Debug, Clone)]
pub struct Spanned<T> {
    /// The parsed value.
    pub value: T,
    /// Where it started in the source.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Pairs a value with a span.
    pub fn new(value: T, span: Span) -> Spanned<T> {
        Spanned { value, span }
    }
}

/// A parsed TOML value.
#[derive(Debug, Clone)]
pub enum TomlValue {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An array (elements keep their own spans).
    Array(Vec<Spanned<TomlValue>>),
    /// A (sub-)table.
    Table(Table),
}

impl TomlValue {
    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "a string",
            TomlValue::Int(_) => "an integer",
            TomlValue::Bool(_) => "a boolean",
            TomlValue::Array(_) => "an array",
            TomlValue::Table(_) => "a table",
        }
    }
}

/// An ordered table of key/value bindings.
#[derive(Debug, Clone)]
pub struct Table {
    /// Where the table was introduced (its header, or the document start).
    pub span: Span,
    /// The bindings, in source order.
    pub entries: Vec<(Spanned<String>, Spanned<TomlValue>)>,
}

impl Table {
    fn new(span: Span) -> Table {
        Table { span, entries: Vec::new() }
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Spanned<TomlValue>> {
        self.entries.iter().find(|(k, _)| k.value == key).map(|(_, v)| v)
    }

    /// The keys of this table, in source order.
    pub fn keys(&self) -> impl Iterator<Item = &Spanned<String>> {
        self.entries.iter().map(|(k, _)| k)
    }
}

/// A parse error with its position.
#[derive(Debug, Clone)]
pub struct TomlError {
    /// Where the error is.
    pub span: Span,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for TomlError {}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn span(&self) -> Span {
        Span { line: self.line, col: self.col }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn err(&self, message: impl Into<String>) -> TomlError {
        TomlError { span: self.span(), message: message.into() }
    }

    /// Skips spaces/tabs and comments; newlines too when `newlines` is set.
    fn skip_trivia(&mut self, newlines: bool) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') => {
                    self.bump();
                }
                Some(b'\n') if newlines => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    /// Consumes to end of line, requiring only trivia remains on it.
    fn expect_eol(&mut self) -> Result<(), TomlError> {
        self.skip_trivia(false);
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.bump();
                Ok(())
            }
            Some(b) => Err(self.err(format!("expected end of line, found {:?}", char::from(b)))),
        }
    }

    fn bare_key(&mut self) -> Result<String, TomlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            let found =
                self.peek().map_or("end of input".to_owned(), |b| format!("{:?}", char::from(b)));
            return Err(self.err(format!("expected a key, found {found}")));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn string(&mut self) -> Result<String, TomlError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.bump();
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    other => {
                        let found = other
                            .map_or("end of input".to_owned(), |b| format!("{:?}", char::from(b)));
                        return Err(self.err(format!("unsupported escape {found}")));
                    }
                },
                Some(b'\n') => return Err(self.err("unterminated string")),
                Some(b) => out.push(char::from(b)),
            }
        }
    }

    fn key(&mut self) -> Result<Spanned<String>, TomlError> {
        let span = self.span();
        let key = if self.peek() == Some(b'"') { self.string()? } else { self.bare_key()? };
        Ok(Spanned::new(key, span))
    }

    /// A dotted key path, as in `[a.b.c]`.
    fn key_path(&mut self) -> Result<Vec<Spanned<String>>, TomlError> {
        let mut path = vec![self.key()?];
        while self.peek() == Some(b'.') {
            self.bump();
            path.push(self.key()?);
        }
        Ok(path)
    }

    fn value(&mut self) -> Result<Spanned<TomlValue>, TomlError> {
        self.skip_trivia(false);
        let span = self.span();
        match self.peek() {
            None => Err(self.err("expected a value, found end of input")),
            Some(b'"') => Ok(Spanned::new(TomlValue::Str(self.string()?), span)),
            Some(b'[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_trivia(true);
                    if self.peek() == Some(b']') {
                        self.bump();
                        return Ok(Spanned::new(TomlValue::Array(items), span));
                    }
                    items.push(self.value()?);
                    self.skip_trivia(true);
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                        }
                        Some(b']') => {}
                        _ => return Err(self.err("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                if b == b'-' {
                    self.bump();
                }
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.bump();
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                let n: i64 = text
                    .parse()
                    .map_err(|_| TomlError { span, message: format!("bad integer {text:?}") })?;
                Ok(Spanned::new(TomlValue::Int(n), span))
            }
            Some(_) => {
                let word = self.bare_key()?;
                match word.as_str() {
                    "true" => Ok(Spanned::new(TomlValue::Bool(true), span)),
                    "false" => Ok(Spanned::new(TomlValue::Bool(false), span)),
                    other => Err(TomlError {
                        span,
                        message: format!("expected a value, found {other:?}"),
                    }),
                }
            }
        }
    }
}

/// Walks `root` down `path`, creating tables as needed; for a path segment
/// holding an array of tables, descends into its *last* element (TOML's
/// `[[..]]` semantics).
fn navigate<'t>(root: &'t mut Table, path: &[Spanned<String>]) -> Result<&'t mut Table, TomlError> {
    let mut cur = root;
    for seg in path {
        let idx = match cur.entries.iter().position(|(k, _)| k.value == seg.value) {
            Some(i) => i,
            None => {
                cur.entries.push((
                    seg.clone(),
                    Spanned::new(TomlValue::Table(Table::new(seg.span)), seg.span),
                ));
                cur.entries.len() - 1
            }
        };
        cur = match &mut cur.entries[idx].1.value {
            TomlValue::Table(t) => t,
            TomlValue::Array(items) => match items.last_mut() {
                Some(Spanned { value: TomlValue::Table(t), .. }) => t,
                _ => {
                    return Err(TomlError {
                        span: seg.span,
                        message: format!("{:?} is not a table", seg.value),
                    })
                }
            },
            _ => {
                return Err(TomlError {
                    span: seg.span,
                    message: format!("{:?} is not a table", seg.value),
                })
            }
        };
    }
    Ok(cur)
}

/// Parses a TOML document into its root [`Table`].
///
/// # Errors
///
/// Returns the first [`TomlError`] (with position) on malformed input.
pub fn parse(src: &str) -> Result<Table, TomlError> {
    let mut root = Table::new(Span { line: 1, col: 1 });
    let mut cursor = Cursor::new(src);
    // the table the next `key = value` lines land in
    let mut current: Vec<Spanned<String>> = Vec::new();
    loop {
        cursor.skip_trivia(true);
        let Some(b) = cursor.peek() else { break };
        if b == b'[' {
            let header_span = cursor.span();
            cursor.bump();
            let is_array = cursor.peek() == Some(b'[');
            if is_array {
                cursor.bump();
            }
            cursor.skip_trivia(false);
            let path = cursor.key_path()?;
            cursor.skip_trivia(false);
            for _ in 0..if is_array { 2 } else { 1 } {
                if cursor.peek() == Some(b']') {
                    cursor.bump();
                } else {
                    return Err(cursor.err("expected ']' to close the table header"));
                }
            }
            cursor.expect_eol()?;
            if is_array {
                let (last, parent_path) = path.split_last().expect("key_path is nonempty");
                let parent = navigate(&mut root, parent_path)?;
                match parent.entries.iter_mut().find(|(k, _)| k.value == last.value) {
                    None => parent.entries.push((
                        last.clone(),
                        Spanned::new(
                            TomlValue::Array(vec![Spanned::new(
                                TomlValue::Table(Table::new(header_span)),
                                header_span,
                            )]),
                            header_span,
                        ),
                    )),
                    Some((_, Spanned { value: TomlValue::Array(items), .. })) => items
                        .push(Spanned::new(TomlValue::Table(Table::new(header_span)), header_span)),
                    Some(_) => {
                        return Err(TomlError {
                            span: header_span,
                            message: format!("{:?} is not an array of tables", last.value),
                        })
                    }
                }
            } else {
                // creates the table (or errors if the path hits a scalar);
                // re-opening an existing table is allowed
                navigate(&mut root, &path)?;
            }
            current = path;
        } else {
            let key = cursor.key()?;
            cursor.skip_trivia(false);
            if cursor.peek() == Some(b'=') {
                cursor.bump();
            } else {
                return Err(cursor.err("expected '=' after the key"));
            }
            let value = cursor.value()?;
            cursor.expect_eol()?;
            let table = navigate(&mut root, &current)?;
            if table.get(&key.value).is_some() {
                return Err(TomlError {
                    span: key.span,
                    message: format!("duplicate key {:?}", key.value),
                });
            }
            table.entries.push((key, value));
        }
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let doc = parse(
            r#"
# a scenario
[scenario]
name = "SpReach"   # inline comment
k = 4
modular = true

[topology]
nodes = ["a", "b"]
edges = [
    ["a", "b"],
]

[[policy.edge]]
from = "a"
to = "b"

[[policy.edge]]
from = "b"
to = "a"
"#,
        )
        .unwrap();
        let scenario = match &doc.get("scenario").unwrap().value {
            TomlValue::Table(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(
            matches!(&scenario.get("name").unwrap().value, TomlValue::Str(s) if s == "SpReach")
        );
        assert!(matches!(scenario.get("k").unwrap().value, TomlValue::Int(4)));
        assert!(matches!(scenario.get("modular").unwrap().value, TomlValue::Bool(true)));
        let policy = match &doc.get("policy").unwrap().value {
            TomlValue::Table(t) => t,
            other => panic!("{other:?}"),
        };
        let edges = match &policy.get("edge").unwrap().value {
            TomlValue::Array(items) => items,
            other => panic!("{other:?}"),
        };
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn spans_point_at_the_problem() {
        let err = parse("[scenario]\nname = @\n").unwrap_err();
        assert_eq!((err.span.line, err.span.col), (2, 8));
        assert!(err.to_string().starts_with("line 2, col 8:"), "{err}");

        let err = parse("a = 1\na = 2\n").unwrap_err();
        assert_eq!((err.span.line, err.span.col), (2, 1));
        assert!(err.message.contains("duplicate"), "{err}");

        let err = parse("x = \"unclosed\n").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
    }

    #[test]
    fn quoted_keys_and_nested_arrays() {
        let doc = parse("[init.node]\n\"edge-0-0\" = \"(some x)\"\n").unwrap();
        let init = match &doc.get("init").unwrap().value {
            TomlValue::Table(t) => t,
            other => panic!("{other:?}"),
        };
        let node = match &init.get("node").unwrap().value {
            TomlValue::Table(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(node.get("edge-0-0").is_some());
    }
}
