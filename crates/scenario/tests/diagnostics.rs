//! Golden tests for compiler diagnostics: bad scenario text must produce
//! stable, span-carrying error messages. These strings are part of the user
//! interface — update them deliberately, not incidentally.

use timepiece_scenario::compile_str;

/// A minimal scenario that compiles cleanly; each bad case below is a small
/// mutation of this document.
const BASE: &str = r#"
[scenario]
name = "hopcount"
k = 3

[topology]
nodes = ["a", "b", "c"]
edges = [["a", "b"], ["b", "c"]]

[schema]
name = "Hop"
fields = [["len", "int"]]
merge = ["lower(len)"]

[policy]
default = ["when true => inc(len, 1)"]

[init]
default = "(none Hop)"

[init.node]
"a" = "(some (record Hop 0))"

[property]
default = "(finally 3 (globally (is-some route)))"

[interface]
default = "(finally 3 (globally (is-some route)))"
"#;

fn error_of(src: &str) -> String {
    match compile_str(src) {
        Ok(_) => panic!("expected a compile error, but the scenario compiled"),
        Err(e) => e.to_string(),
    }
}

#[test]
fn the_base_document_compiles() {
    let compiled = compile_str(BASE).expect("base document must compile");
    assert_eq!(compiled.name, "hopcount");
    assert_eq!(compiled.k, 3);
    assert_eq!(compiled.network.topology().node_count(), 3);
}

#[test]
fn toml_syntax_errors_carry_spans() {
    let src = "[scenario]\nname = \"unterminated\n";
    assert_eq!(error_of(src), "line 3, col 1: unterminated string");
}

#[test]
fn missing_scenario_section_is_reported() {
    let src = "[topology]\nnodes = [\"a\"]\nedges = []\n";
    assert_eq!(error_of(src), "line 1, col 1: missing required section [scenario]");
}

#[test]
fn unknown_policy_node_is_reported_with_its_span() {
    let src = BASE.replace(
        "[policy]\ndefault = [\"when true => inc(len, 1)\"]",
        "[policy]\ndefault = [\"when true => inc(len, 1)\"]\n\n[[policy.edge]]\nfrom = \"a\"\nto = \"zz\"\nclauses = [\"when true => drop\"]",
    );
    assert_eq!(error_of(&src), "line 20, col 6: unknown node \"zz\" (not in the topology)");
}

#[test]
fn ill_typed_rewrite_is_reported() {
    let src = BASE.replace("when true => inc(len, 1)", "when true => set-bool(len, true)");
    assert_eq!(
        error_of(&src),
        "line 16, col 12: ill-typed rewrite: field \"len\" needs a boolean type, found int"
    );
}

#[test]
fn non_total_rank_merge_key_is_rejected() {
    let src = BASE
        .replace(
            "fields = [[\"len\", \"int\"]]",
            "fields = [[\"len\", \"int\"], [\"o\", \"(enum Ori a b c)\"]]",
        )
        .replace("merge = [\"lower(len)\"]", "merge = [\"lower(len)\", \"rank(o; a, b)\"]")
        .replace("(record Hop 0)", "(record Hop 0 (enum Ori a))");
    assert_eq!(
        error_of(&src),
        "line 13, col 24: non-total merge key: rank order omits variant \"c\" of \"Ori\""
    );
}

#[test]
fn init_term_of_the_wrong_type_is_rejected() {
    let src = BASE.replace("\"a\" = \"(some (record Hop 0))\"", "\"a\" = \"42\"");
    assert_eq!(
        error_of(&src),
        "line 22, col 7: initial route of \"a\" has type int, expected the route type option<record Hop>"
    );
}
