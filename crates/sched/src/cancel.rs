//! Cooperative cancellation with eager side effects.
//!
//! A [`CancelToken`] is the one signal a run shares between its workers, the
//! task that discovers a failure, and any in-flight solver calls: raising it
//! flips a flag every worker polls *and* fires registered hooks (e.g. solver
//! interrupt handles), so long-running external calls are aborted instead of
//! merely not rescheduled.
//!
//! Hooks must be **idempotent**: beyond the initial firing by
//! [`CancelToken::cancel`], a watchdog may [`CancelToken::refire`] them to
//! close the race where a cancellation lands *between* a worker's flag check
//! and its entry into a long external call — an interrupt delivered to an
//! idle solver is a no-op, so a single firing could be lost.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

type Hook = Arc<dyn Fn() + Send + Sync>;

struct HookState {
    hooks: Vec<Hook>,
    /// Has the initial [`CancelToken::cancel`] firing happened? Hooks
    /// registered after that run immediately.
    fired: bool,
}

struct Inner {
    flag: AtomicBool,
    hooks: Mutex<HookState>,
}

/// A cloneable cancellation signal: a flag plus idempotent hooks.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use timepiece_sched::CancelToken;
///
/// let token = CancelToken::new();
/// let fired = Arc::new(AtomicUsize::new(0));
/// let counter = Arc::clone(&fired);
/// token.on_cancel(move || {
///     counter.fetch_add(1, Ordering::Relaxed);
/// });
/// assert!(!token.is_cancelled());
/// token.cancel();
/// token.cancel(); // idempotent: the initial firing happens once
/// assert!(token.is_cancelled());
/// assert_eq!(fired.load(Ordering::Relaxed), 1);
/// token.refire(); // watchdogs may deliver the signal again
/// assert_eq!(fired.load(Ordering::Relaxed), 2);
/// ```
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken").field("cancelled", &self.is_cancelled()).finish()
    }
}

impl CancelToken {
    /// A fresh, unraised token.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                hooks: Mutex::new(HookState { hooks: Vec::new(), fired: false }),
            }),
        }
    }

    /// Has [`CancelToken::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Acquire)
    }

    /// The underlying flag, for APIs that poll a plain [`AtomicBool`]
    /// (e.g. `SolverSession::check_cancellable` in `timepiece-smt`).
    pub fn flag(&self) -> &AtomicBool {
        &self.inner.flag
    }

    /// A snapshot of the hooks, marking the initial firing as done.
    fn snapshot(&self) -> Vec<Hook> {
        let mut state = self.inner.hooks.lock();
        state.fired = true;
        state.hooks.clone()
    }

    /// Raises the flag and fires every registered hook. Racing cancellers
    /// are harmless: the flag is monotone and hooks are idempotent.
    pub fn cancel(&self) {
        let already = self.inner.flag.swap(true, Ordering::AcqRel);
        if !already {
            // hooks run outside the lock, so a hook may freely register
            // further hooks or be raced by `refire`
            for hook in self.snapshot() {
                hook();
            }
        }
    }

    /// Fires every hook again if the token is cancelled (no-op otherwise).
    /// Watchdogs call this periodically: a hook like a solver interrupt is
    /// lost when it lands while the solver is idle, so delivery must repeat
    /// until every worker has wound down.
    pub fn refire(&self) {
        if self.is_cancelled() {
            for hook in self.snapshot() {
                hook();
            }
        }
    }

    /// Registers an idempotent hook to run on cancellation. If the initial
    /// firing already happened, the hook runs immediately (on this thread).
    pub fn on_cancel(&self, hook: impl Fn() + Send + Sync + 'static) {
        let hook: Hook = Arc::new(hook);
        let run_now = {
            let mut state = self.inner.hooks.lock();
            state.hooks.push(Arc::clone(&hook));
            state.fired
        };
        if run_now {
            hook();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn late_registration_fires_immediately() {
        let token = CancelToken::new();
        token.cancel();
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&fired);
        token.on_cancel(move || {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn clones_share_state() {
        let token = CancelToken::new();
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(token.flag().load(Ordering::Acquire));
    }

    #[test]
    fn concurrent_cancels_fire_hooks_once() {
        for _ in 0..50 {
            let token = CancelToken::new();
            let fired = Arc::new(AtomicUsize::new(0));
            let counter = Arc::clone(&fired);
            token.on_cancel(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let token = token.clone();
                    scope.spawn(move || token.cancel());
                }
            });
            assert_eq!(fired.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn refire_repeats_delivery_only_after_cancel() {
        let token = CancelToken::new();
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&fired);
        token.on_cancel(move || {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        token.refire();
        assert_eq!(fired.load(Ordering::Relaxed), 0, "refire before cancel is a no-op");
        token.cancel();
        token.refire();
        token.refire();
        assert_eq!(fired.load(Ordering::Relaxed), 3);
    }
}
