//! Per-node-class cost models and cost-adaptive shard planning.
//!
//! [`ShardPlan::by_class`] stripes every symmetry class round-robin across
//! shards, which equalizes the class *mix* but not the predicted *work*:
//! when class sizes do not divide the shard count, one shard ends up with
//! an extra node of the most expensive class and the whole sweep waits on
//! it. A [`CostModel`] carries measured (or assumed) per-class check costs
//! — typically fit from accumulated `repro fig14 --json` dumps — and
//! [`plan_adaptive`] bin-packs nodes into shards by predicted cost using
//! the classic LPT (longest processing time first) greedy rule.
//!
//! Only *relative* class costs matter to the packing, so a model fit at a
//! different fattree size than the one being planned is still useful: the
//! core/aggregation/edge cost ratios are what steer the plan.
//!
//! Everything here is deterministic: the same nodes, shard count, class
//! keys and model always produce the same [`CostedPlan`], so a plan can be
//! recomputed (or recorded and replayed) by any participant.

use std::collections::BTreeMap;

use timepiece_topology::NodeId;

use crate::shard::ShardPlan;

/// Predicted per-node check cost, keyed by symmetry class.
///
/// Classes the model has no sample for fall back to the mean of the known
/// classes (or `1.0` when the model is [uniform](CostModel::uniform)), so
/// an unknown class is treated as average work rather than free.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    class_costs: BTreeMap<String, f64>,
    /// Labels of the measurement sets the model was fit on (dump file
    /// stems); empty for the uniform fallback.
    sources: Vec<String>,
}

impl CostModel {
    /// The no-history fallback: every class costs the same, so LPT packing
    /// degenerates to balancing shard *sizes*.
    pub fn uniform() -> CostModel {
        CostModel { class_costs: BTreeMap::new(), sources: Vec::new() }
    }

    /// Fits a model from `(class, seconds)` samples by averaging the
    /// samples of each class. Non-finite or non-positive samples are
    /// ignored; with no usable sample the model is uniform.
    pub fn fit(
        samples: impl IntoIterator<Item = (String, f64)>,
        sources: impl IntoIterator<Item = String>,
    ) -> CostModel {
        let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
        for (class, secs) in samples {
            if secs.is_finite() && secs > 0.0 {
                let slot = sums.entry(class).or_insert((0.0, 0));
                slot.0 += secs;
                slot.1 += 1;
            }
        }
        let class_costs: BTreeMap<String, f64> =
            sums.into_iter().map(|(class, (sum, n))| (class, sum / n as f64)).collect();
        let sources =
            if class_costs.is_empty() { Vec::new() } else { sources.into_iter().collect() };
        CostModel { class_costs, sources }
    }

    /// Is this the no-history uniform model?
    pub fn is_uniform(&self) -> bool {
        self.class_costs.is_empty()
    }

    /// Predicted seconds for one node of `class`.
    pub fn cost_of(&self, class: &str) -> f64 {
        if let Some(&cost) = self.class_costs.get(class) {
            return cost;
        }
        if self.class_costs.is_empty() {
            return 1.0;
        }
        self.class_costs.values().sum::<f64>() / self.class_costs.len() as f64
    }

    /// The fitted `(class, seconds)` pairs, in class order.
    pub fn classes(&self) -> impl Iterator<Item = (&str, f64)> {
        self.class_costs.iter().map(|(class, &cost)| (class.as_str(), cost))
    }

    /// Labels of the measurement sets the model was fit on.
    pub fn sources(&self) -> &[String] {
        &self.sources
    }
}

/// A shard plan together with the per-shard cost the model predicted for
/// it — what `repro plan` prints and imbalance debugging compares against
/// measured shard wall times.
#[derive(Debug, Clone, PartialEq)]
pub struct CostedPlan {
    /// The node partition.
    pub plan: ShardPlan,
    /// Predicted seconds per shard, indexed like the plan's shards.
    pub predicted: Vec<f64>,
}

impl CostedPlan {
    /// `max / mean` of the predicted shard costs — the plan's predicted
    /// imbalance (1.0 is perfect). Empty shards count toward the mean:
    /// leaving a shard idle *is* imbalance.
    pub fn predicted_imbalance(&self) -> f64 {
        imbalance(&self.predicted)
    }
}

/// `max / mean` over per-shard quantities (predicted costs or measured
/// wall seconds); `1.0` for empty or all-zero inputs.
pub fn imbalance(per_shard: &[f64]) -> f64 {
    if per_shard.is_empty() {
        return 1.0;
    }
    let max = per_shard.iter().copied().fold(0.0_f64, f64::max);
    let mean = per_shard.iter().sum::<f64>() / per_shard.len() as f64;
    if mean <= 0.0 {
        1.0
    } else {
        max / mean
    }
}

/// Plans `shards` shards over `nodes` by LPT bin packing on the model's
/// predicted costs: nodes are sorted by descending predicted cost (ties
/// broken by node id, so the plan is deterministic) and each is placed on
/// the currently cheapest shard (ties broken by shard index).
///
/// With a [uniform](CostModel::uniform) model this balances shard sizes;
/// with a fitted model it balances predicted seconds.
pub fn plan_adaptive<K: AsRef<str>>(
    nodes: impl IntoIterator<Item = NodeId>,
    shards: usize,
    class_of: impl Fn(NodeId) -> K,
    model: &CostModel,
) -> CostedPlan {
    let shards = shards.max(1);
    let mut costed: Vec<(NodeId, f64)> = {
        let mut nodes: Vec<NodeId> = nodes.into_iter().collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.into_iter().map(|v| (v, model.cost_of(class_of(v).as_ref()))).collect()
    };
    // LPT: heaviest first; the node-id tiebreak keeps the order total
    costed.sort_by(|(u, a), (v, b)| {
        b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal).then(u.cmp(v))
    });
    let mut bins: Vec<Vec<NodeId>> = vec![Vec::new(); shards];
    let mut loads = vec![0.0_f64; shards];
    for (v, cost) in costed {
        let lightest = loads
            .iter()
            .enumerate()
            .min_by(|(i, a), (j, b)| {
                a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal).then(i.cmp(j))
            })
            .map(|(i, _)| i)
            .expect("at least one shard");
        bins[lightest].push(v);
        loads[lightest] += cost;
    }
    // deterministic within-shard check order, independent of packing order
    for bin in &mut bins {
        bin.sort_unstable();
    }
    CostedPlan { plan: ShardPlan::from_shards(bins), predicted: loads }
}

/// The striped baseline plan with the model's cost predictions attached,
/// so `repro plan` can print the predicted imbalance of both strategies
/// side by side.
pub fn cost_striped<K: Ord + AsRef<str>>(
    nodes: impl IntoIterator<Item = NodeId>,
    shards: usize,
    class_of: impl Fn(NodeId) -> K,
    model: &CostModel,
) -> CostedPlan {
    let plan = ShardPlan::by_class(nodes, shards, &class_of);
    let predicted = (0..plan.shard_count())
        .map(|s| plan.nodes_of(s).iter().map(|&v| model.cost_of(class_of(v).as_ref())).sum())
        .collect();
    CostedPlan { plan, predicted }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u32>) -> Vec<NodeId> {
        range.map(NodeId::new).collect()
    }

    /// 0..4 are "core" (expensive), 4..12 are "edge" (cheap).
    fn class(v: NodeId) -> &'static str {
        if v.index() < 4 {
            "core"
        } else {
            "edge"
        }
    }

    fn model() -> CostModel {
        CostModel::fit(
            [("core".to_owned(), 4.0), ("core".to_owned(), 2.0), ("edge".to_owned(), 1.0)],
            ["dump-a".to_owned()],
        )
    }

    #[test]
    fn fit_averages_per_class_and_ignores_garbage() {
        let m = model();
        assert_eq!(m.cost_of("core"), 3.0);
        assert_eq!(m.cost_of("edge"), 1.0);
        // unknown classes get the mean of the known ones, not zero
        assert_eq!(m.cost_of("agg"), 2.0);
        assert!(!m.is_uniform());
        assert_eq!(m.sources(), ["dump-a".to_owned()]);
        let junk = CostModel::fit(
            [("core".to_owned(), f64::NAN), ("core".to_owned(), -1.0), ("x".to_owned(), 0.0)],
            ["dump-b".to_owned()],
        );
        assert!(junk.is_uniform());
        assert_eq!(junk.cost_of("core"), 1.0);
        assert!(junk.sources().is_empty(), "an unusable fit records no sources");
    }

    #[test]
    fn adaptive_plan_balances_predicted_cost_not_size() {
        // 4 cores at cost 3 + 8 edges at cost 1 = 20 total over 2 shards:
        // LPT lands exactly 10/10 predicted
        let costed = plan_adaptive(ids(0..12), 2, class, &model());
        assert!(costed.plan.covers(ids(0..12)));
        assert_eq!(costed.predicted.iter().sum::<f64>(), 20.0);
        assert_eq!(costed.predicted, vec![10.0, 10.0]);
        assert!((costed.predicted_imbalance() - 1.0).abs() < 1e-9);

        // 3 cores at cost 3 + 3 edges at cost 1 over 2 shards: perfect cost
        // balance (6/6) requires unequal sizes (2 vs 4) — the trade striping
        // cannot make
        let lopsided = |v: NodeId| if v.index() < 3 { "core" } else { "edge" };
        let m = CostModel::fit(
            [("core".to_owned(), 3.0), ("edge".to_owned(), 1.0)],
            ["dump-a".to_owned()],
        );
        let costed = plan_adaptive(ids(0..6), 2, lopsided, &m);
        assert_eq!(costed.predicted, vec![6.0, 6.0]);
        let sizes: Vec<usize> = (0..2).map(|s| costed.plan.nodes_of(s).len()).collect();
        assert_ne!(sizes[0], sizes[1], "cost balance trades away size balance: {sizes:?}");
    }

    #[test]
    fn adaptive_plan_is_deterministic_and_order_independent() {
        let mut reversed = ids(0..12);
        reversed.reverse();
        let a = plan_adaptive(ids(0..12), 3, class, &model());
        let b = plan_adaptive(reversed, 3, class, &model());
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_model_degenerates_to_size_balancing() {
        let costed = plan_adaptive(ids(0..10), 3, class, &CostModel::uniform());
        let sizes: Vec<usize> = (0..3).map(|s| costed.plan.nodes_of(s).len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1, "{sizes:?}");
        assert!(costed.plan.covers(ids(0..10)));
    }

    #[test]
    fn striped_costing_prices_the_by_class_plan() {
        let costed = cost_striped(ids(0..12), 2, class, &model());
        assert_eq!(costed.plan, ShardPlan::by_class(ids(0..12), 2, class));
        assert_eq!(costed.predicted.iter().sum::<f64>(), 20.0);
    }

    #[test]
    fn imbalance_handles_edge_cases() {
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0.0, 0.0]), 1.0);
        assert_eq!(imbalance(&[2.0, 2.0]), 1.0);
        assert_eq!(imbalance(&[3.0, 1.0]), 1.5);
        // an idle shard is imbalance, not a smaller denominator
        assert_eq!(imbalance(&[2.0, 0.0]), 2.0);
    }

    #[test]
    fn more_shards_than_nodes_still_covers() {
        let costed = plan_adaptive(ids(0..2), 5, class, &model());
        assert_eq!(costed.plan.shard_count(), 5);
        assert!(costed.plan.covers(ids(0..2)));
    }
}
