//! A minimal JSON value, writer and parser.
//!
//! The shard protocol and the benchmark row dumps need machine-readable
//! output, and the workspace builds offline (no serde). This module covers
//! exactly what those producers and consumers use: the six JSON value kinds,
//! string escaping, and a strict recursive-descent parser that round-trips
//! everything the writer emits.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects preserve insertion order (stable output for diffs
/// and golden tests).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `usize`, if this is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (one value, optionally surrounded by
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Infinity literal; null keeps the
                    // writer→parser round-trip promise for every value
                    write!(f, "null")
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { message: message.into(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // surrogates are not emitted by our writer;
                            // map unpaired ones to the replacement character
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe)
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err(format!("bad number {text:?}")))
    }
}

/// Convenience: the object's pairs as a map, for consumers that do not care
/// about ordering.
pub fn object_map(value: &Json) -> Option<BTreeMap<&str, &Json>> {
    match value {
        Json::Obj(pairs) => Some(pairs.iter().map(|(k, v)| (k.as_str(), v)).collect()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let value = Json::obj([
            ("name", Json::str("Ap\"Reach\"\n")),
            ("k", Json::from(8usize)),
            ("wall", Json::Num(1.625)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("rows", Json::arr([Json::from(1usize), Json::from(-2.5), Json::str("x")])),
        ]);
        let text = value.to_string();
        assert_eq!(Json::parse(&text).unwrap(), value);
    }

    #[test]
    fn accessors() {
        let value = Json::parse(r#"{"a": 3, "b": [true, null], "s": "hi"}"#).unwrap();
        assert_eq!(value.get("a").and_then(Json::as_usize), Some(3));
        assert_eq!(value.get("s").and_then(Json::as_str), Some("hi"));
        let arr = value.get("b").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(value.get("missing"), None);
        assert_eq!(object_map(&value).unwrap().len(), 3);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let value = Json::parse(r#""a\\b\"c\nAü""#).unwrap();
        assert_eq!(value.as_str(), Some("a\\b\"c\nAü"));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(42usize).to_string(), "42");
        assert_eq!(Json::Num(0.125).to_string(), "0.125");
    }

    #[test]
    fn non_finite_numbers_print_as_null_and_still_parse() {
        for n in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let text = Json::arr([Json::Num(n)]).to_string();
            assert_eq!(Json::parse(&text).unwrap(), Json::arr([Json::Null]));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let value = Json::parse(" {\n\t\"a\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(value.get("a").and_then(Json::as_arr).unwrap().len(), 2);
    }
}
