//! `timepiece-sched`: the verification-scheduling subsystem.
//!
//! The paper's headline observation is that modular checking turns control
//! plane verification into an embarrassingly parallel pile of per-node
//! verification conditions. This crate is the machinery that drains that
//! pile well, at three scales:
//!
//! * **Within a process** — [`StealQueue`] + [`run`]: per-worker deques with
//!   batched steal-half instead of a contended global counter. Each worker
//!   owns private state built once per run (the modular checker puts its
//!   long-lived solver sessions there), so consecutive tasks on a worker
//!   share encoder caches and solver contexts.
//! * **Across a failure** — [`CancelToken`]: cooperative fail-fast
//!   cancellation whose hooks also *interrupt* in-flight solver calls, so a
//!   discovered violation stops the fleet in interrupt latency, not in
//!   time-to-finish-the-longest-solve.
//! * **Across processes** — [`ShardPlan`]: a deterministic partition of the
//!   node set by symmetry class, recomputed identically by a coordinator
//!   and its worker subprocesses, plus the [`Json`] value type their shard
//!   reports travel in. The [`cost`] module upgrades striped plans to
//!   cost-adaptive ones: a per-class [`CostModel`] (fit from measured
//!   sweep history) drives LPT bin packing so every shard carries the same
//!   *predicted seconds*, not just the same node count.
//!
//! The scheduler is deliberately independent of SMT types: tasks are any
//! `Send` values, per-worker state is any type, and cancellation hooks are
//! plain closures. `timepiece-core`'s `ModularChecker` plugs its sessions
//! and conditions into these hooks.
//!
//! # Example
//!
//! Drain a skewed workload on four workers with per-worker state:
//!
//! ```
//! use timepiece_sched::{run, CancelToken};
//!
//! let token = CancelToken::new();
//! let outcome = run(
//!     (0u32..64).collect(),
//!     4,
//!     &token,
//!     |worker| (worker, 0u32),
//!     |(_, processed), task| {
//!         *processed += 1;
//!         Ok::<_, std::convert::Infallible>(Some(task))
//!     },
//! )?;
//! assert_eq!(outcome.results.len(), 64);
//! # Ok::<(), std::convert::Infallible>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cancel;
pub mod cost;
pub mod pool;
pub mod queue;
pub mod shard;

/// The hand-rolled JSON codec the shard reports travel in. It moved to the
/// bottom of the crate stack (`timepiece-trace`, which exports traces
/// through it); re-exported here so shard-protocol call sites keep their
/// `timepiece_sched::json` paths.
pub use timepiece_trace::json;

pub use cancel::CancelToken;
pub use cost::{plan_adaptive, CostModel, CostedPlan};
pub use json::{Json, JsonError};
pub use pool::{run, SchedOutcome, SchedStats};
pub use queue::StealQueue;
pub use shard::ShardPlan;
