//! The scheduler's execution engine: a scoped worker pool over a
//! [`StealQueue`], with per-worker state and fail-fast cancellation.

use parking_lot::Mutex;

use crate::cancel::CancelToken;
use crate::queue::StealQueue;

/// What one run of the pool did, beyond the task results themselves.
#[derive(Debug, Clone)]
pub struct SchedStats {
    /// How many workers ran.
    pub workers: usize,
    /// Tasks claimed per worker (including tasks a worker abandoned after a
    /// cancellation landed mid-task).
    pub claimed: Vec<usize>,
    /// Successful steal operations across the run.
    pub steals: usize,
    /// Tasks that changed owner through stealing.
    pub stolen_tasks: usize,
    /// Did the run end by cancellation (fail-fast or error)?
    pub cancelled: bool,
}

/// The results and statistics of one [`run`].
#[derive(Debug)]
pub struct SchedOutcome<R> {
    /// Output of every task that completed, in no particular order.
    pub results: Vec<R>,
    /// Execution statistics.
    pub stats: SchedStats,
}

/// Runs `items` to completion (or cancellation) on a pool of `workers`
/// work-stealing threads.
///
/// Each worker builds its own state once via `init` — this is where a
/// verification worker opens its long-lived solver sessions — and then loops:
/// claim a task (own deque first, steal-half otherwise), run `task`, repeat
/// until the queue is dry or `token` is raised.
///
/// `task` returns:
///
/// * `Ok(Some(r))` — the task completed with result `r`;
/// * `Ok(None)` — the task was *abandoned* (cancellation landed mid-task);
///   nothing is recorded for it;
/// * `Err(e)` — a hard error: the token is raised, every other worker winds
///   down, and the first such error is returned for the whole run.
///
/// Cancellation is cooperative: workers observe the token between tasks, and
/// tasks that poll it themselves (or register interrupt hooks via
/// [`CancelToken::on_cancel`]) stop earlier still.
///
/// # Errors
///
/// The first `Err` any task produced, if any.
///
/// # Example
///
/// ```
/// use timepiece_sched::{run, CancelToken};
///
/// let token = CancelToken::new();
/// let outcome = run(
///     (0u64..100).collect(),
///     4,
///     &token,
///     |_worker| 0u64,          // per-worker accumulator
///     |acc, task| {
///         *acc += task;
///         Ok::<_, std::convert::Infallible>(Some(task * 2))
///     },
/// )?;
/// assert_eq!(outcome.results.len(), 100);
/// assert_eq!(outcome.stats.claimed.iter().sum::<usize>(), 100);
/// # Ok::<(), std::convert::Infallible>(())
/// ```
pub fn run<T, R, S, E>(
    items: Vec<T>,
    workers: usize,
    token: &CancelToken,
    init: impl Fn(usize) -> S + Sync,
    task: impl Fn(&mut S, T) -> Result<Option<R>, E> + Sync,
) -> Result<SchedOutcome<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
{
    let workers = workers.clamp(1, items.len().max(1));
    let queue = StealQueue::new(items, workers);
    let results = Mutex::new(Vec::new());
    let first_error: Mutex<Option<E>> = Mutex::new(None);
    // the watchdog parks on a condvar so an uncancelled run ends the moment
    // its workers do — a plain sleep loop would pad every run (and every
    // reported wall time) by up to one watchdog period
    let done = std::sync::Mutex::new(false);
    let done_signal = std::sync::Condvar::new();

    // the watchdog must learn of completion even when this function unwinds
    // (a panicking worker makes the join below re-panic before the normal
    // signalling runs; `thread::scope` would then wait forever on a watchdog
    // that never hears the news) — a drop guard signals on every exit path
    struct SignalOnDrop<'a> {
        done: &'a std::sync::Mutex<bool>,
        signal: &'a std::sync::Condvar,
    }
    impl Drop for SignalOnDrop<'_> {
        fn drop(&mut self) {
            *self.done.lock().unwrap_or_else(|poison| poison.into_inner()) = true;
            self.signal.notify_all();
        }
    }

    let claimed = std::thread::scope(|scope| {
        let _completion = SignalOnDrop { done: &done, signal: &done_signal };
        // Watchdog: once the token is raised, keep re-delivering its hooks
        // until every worker has wound down. A single hook firing can be
        // lost — an interrupt that lands between a worker's flag check and
        // its entry into a long solver call hits an *idle* solver and does
        // nothing — so cancellation latency would silently degrade from
        // "interrupt latency" to "one full solve". Refiring bounds the lost
        // window by the watchdog period instead.
        scope.spawn(|| {
            let mut finished = done.lock().expect("watchdog lock");
            while !*finished {
                let (guard, _timeout) = done_signal
                    .wait_timeout(finished, std::time::Duration::from_millis(15))
                    .expect("watchdog wait");
                finished = guard;
                if !*finished {
                    token.refire();
                }
            }
        });
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queue = &queue;
                let results = &results;
                let first_error = &first_error;
                let init = &init;
                let task = &task;
                scope.spawn(move || {
                    timepiece_trace::set_thread_label(format!("worker{w}"));
                    let mut state = init(w);
                    let mut claimed = 0usize;
                    while !token.is_cancelled() {
                        // claim time (own-deque pop or steal scan) is the
                        // scheduler's contribution to the profile's
                        // steal-idle bucket
                        let item = {
                            let _claim =
                                timepiece_trace::span(timepiece_trace::Phase::Idle, "claim");
                            queue.pop(w)
                        };
                        let Some(item) = item else { break };
                        claimed += 1;
                        match task(&mut state, item) {
                            Ok(Some(result)) => results.lock().push(result),
                            Ok(None) => {}
                            Err(e) => {
                                first_error.lock().get_or_insert(e);
                                token.cancel();
                                break;
                            }
                        }
                    }
                    claimed
                })
            })
            .collect();
        // `_completion`'s drop signals the watchdog — here on success, and
        // during unwind when a worker's panic re-raises out of the join
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect::<Vec<usize>>()
    });

    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    Ok(SchedOutcome {
        results: results.into_inner(),
        stats: SchedStats {
            workers,
            claimed,
            steals: queue.steals(),
            stolen_tasks: queue.stolen_tasks(),
            cancelled: token.is_cancelled(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn all_tasks_complete_and_results_collect() {
        let token = CancelToken::new();
        let outcome = run(
            (0..57).collect(),
            3,
            &token,
            |_| (),
            |(), task: i32| Ok::<_, Infallible>(Some(task)),
        )
        .unwrap();
        let mut results = outcome.results;
        results.sort_unstable();
        assert_eq!(results, (0..57).collect::<Vec<_>>());
        assert_eq!(outcome.stats.workers, 3);
        assert!(!outcome.stats.cancelled);
    }

    #[test]
    fn skewed_work_is_stolen() {
        // worker 0 owns tasks that all sleep; the others finish instantly and
        // must steal to keep the run short
        let token = CancelToken::new();
        let outcome = run(
            (0..32).collect(),
            4,
            &token,
            |w| w,
            |w, task: i32| {
                // round-robin distribution put 0,4,8,… on worker 0; make
                // exactly those slow, whoever ends up executing them
                if task % 4 == 0 {
                    std::thread::sleep(Duration::from_millis(20));
                }
                let _ = w;
                Ok::<_, Infallible>(Some(task))
            },
        )
        .unwrap();
        assert_eq!(outcome.results.len(), 32);
        assert!(outcome.stats.steals > 0, "fast workers must steal the slow backlog");
    }

    #[test]
    fn error_cancels_the_run_and_wins() {
        let token = CancelToken::new();
        let attempted = AtomicUsize::new(0);
        let err = run(
            (0..1000).collect(),
            2,
            &token,
            |_| (),
            |(), task: i32| {
                attempted.fetch_add(1, Ordering::Relaxed);
                if task == 3 {
                    Err("boom")
                } else {
                    Ok(Some(task))
                }
            },
        )
        .unwrap_err();
        assert_eq!(err, "boom");
        assert!(token.is_cancelled());
        assert!(attempted.load(Ordering::Relaxed) < 1000, "error must stop the pool early");
    }

    #[test]
    fn cancellation_mid_run_stops_scheduling() {
        let token = CancelToken::new();
        let outcome = run(
            (0..1000).collect(),
            1,
            &token,
            |_| (),
            |(), task: i32| {
                if task == 5 {
                    token.cancel();
                    return Ok(None); // abandoned
                }
                Ok::<_, Infallible>(Some(task))
            },
        )
        .unwrap();
        // round-robin with one worker preserves order: 0..=4 completed,
        // 5 abandoned, nothing after
        assert_eq!(outcome.results.len(), 5);
        assert_eq!(outcome.stats.claimed, vec![6]);
        assert!(outcome.stats.cancelled);
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        // a panicking task must crash the run (joined watchdog included),
        // not leave the scope waiting on a watchdog that never hears of
        // completion
        let token = CancelToken::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(
                (0..10).collect(),
                2,
                &token,
                |_| (),
                |(), t: i32| {
                    if t == 3 {
                        panic!("task exploded");
                    }
                    Ok::<_, Infallible>(Some(t))
                },
            )
        }));
        assert!(result.is_err(), "the panic must propagate out of run()");
    }

    #[test]
    fn worker_count_clamps_to_items() {
        let token = CancelToken::new();
        let outcome =
            run(vec![1], 16, &token, |_| (), |(), t: i32| Ok::<_, Infallible>(Some(t))).unwrap();
        assert_eq!(outcome.stats.workers, 1);
        let token = CancelToken::new();
        let outcome: SchedOutcome<i32> =
            run(Vec::new(), 0, &token, |_| (), |(), t: i32| Ok::<_, Infallible>(Some(t))).unwrap();
        assert_eq!(outcome.stats.workers, 1);
        assert!(outcome.results.is_empty());
    }

    #[test]
    fn per_worker_state_is_initialized_once_per_worker() {
        let token = CancelToken::new();
        let inits = AtomicUsize::new(0);
        let outcome = run(
            (0..64).collect(),
            4,
            &token,
            |w| {
                inits.fetch_add(1, Ordering::Relaxed);
                w
            },
            |_, t: i32| Ok::<_, Infallible>(Some(t)),
        )
        .unwrap();
        assert_eq!(inits.load(Ordering::Relaxed), 4);
        assert_eq!(outcome.stats.claimed.iter().sum::<usize>(), 64);
    }
}
