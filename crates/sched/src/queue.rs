//! A work-stealing task queue: per-worker deques with steal-half.
//!
//! Tasks are distributed round-robin over one deque per worker at
//! construction. A worker pops from the *front* of its own deque; when that
//! runs dry it locates a victim with work and steals the *back half* of the
//! victim's deque in one batch. Batched stealing keeps contention
//! proportional to the imbalance rather than to the task count — the shape
//! "Optimal Multithreaded Batch-Parallel 2-3 Trees" argues for over a
//! contended global counter — while opposite-end access preserves each
//! worker's locality over the prefix it is already draining.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use timepiece_trace::Histogram;

/// Distribution of steal-batch sizes, in the shared metrics registry
/// (`repro profile` and the metrics snapshot report it). The handle is
/// cached: steady-state cost is one relaxed atomic add per steal.
fn steal_batch_sizes() -> &'static Histogram {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| timepiece_trace::histogram("sched.steal.batch_tasks"))
}

/// Per-worker deques with batched work stealing.
///
/// # Example
///
/// ```
/// use timepiece_sched::StealQueue;
///
/// let queue = StealQueue::new(0..10, 2);
/// // worker 1 can drain everything, stealing worker 0's share in batches
/// let drained: Vec<i32> = std::iter::from_fn(|| queue.pop(1)).collect();
/// assert_eq!(drained.len(), 10);
/// assert!(queue.steals() >= 1);
/// ```
#[derive(Debug)]
pub struct StealQueue<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
    steals: AtomicUsize,
    stolen_tasks: AtomicUsize,
}

impl<T> StealQueue<T> {
    /// Distributes `items` round-robin over `workers` deques (at least one).
    pub fn new(items: impl IntoIterator<Item = T>, workers: usize) -> StealQueue<T> {
        let workers = workers.max(1);
        let mut deques: Vec<VecDeque<T>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            deques[i % workers].push_back(item);
        }
        StealQueue {
            deques: deques.into_iter().map(Mutex::new).collect(),
            steals: AtomicUsize::new(0),
            stolen_tasks: AtomicUsize::new(0),
        }
    }

    /// The number of worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Pops the next task for `worker`: its own deque first, else a batch
    /// stolen from a victim. `None` means the whole queue is empty (though a
    /// concurrently *executing* task may still push no more work — this queue
    /// does not support task spawning).
    ///
    /// # Panics
    ///
    /// Panics if `worker >= self.workers()`.
    pub fn pop(&self, worker: usize) -> Option<T> {
        if let Some(task) = self.deques[worker].lock().pop_front() {
            return Some(task);
        }
        self.steal_into(worker)
    }

    /// How many successful steal operations occurred.
    pub fn steals(&self) -> usize {
        self.steals.load(Ordering::Relaxed)
    }

    /// How many tasks changed owner through stealing.
    pub fn stolen_tasks(&self) -> usize {
        self.stolen_tasks.load(Ordering::Relaxed)
    }

    /// Steals the back half of the first victim with work (scanning from the
    /// thief's right neighbor), keeps the batch on the thief's deque and
    /// returns its first task.
    ///
    /// The whole transfer happens with *both* deques locked, so a stolen
    /// task is never invisible to other scanners: it is always in exactly
    /// one deque, except for the single task the thief claims (which is no
    /// different from a popped task). Without this, a sibling scanning
    /// between the victim's `split_off` and the thief's publish could see a
    /// globally empty queue and retire while work remains. Both locks are
    /// acquired in deque-index order, so two workers cross-stealing from
    /// each other cannot deadlock.
    fn steal_into(&self, thief: usize) -> Option<T> {
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (thief + offset) % n;
            let (lo, hi) = (victim.min(thief), victim.max(thief));
            let mut lo_guard = self.deques[lo].lock();
            let mut hi_guard = self.deques[hi].lock();
            let (victim_deque, own) = if victim == lo {
                (&mut *lo_guard, &mut *hi_guard)
            } else {
                (&mut *hi_guard, &mut *lo_guard)
            };
            let len = victim_deque.len();
            if len == 0 {
                continue;
            }
            let mut batch = victim_deque.split_off(len - len.div_ceil(2));
            self.steals.fetch_add(1, Ordering::Relaxed);
            self.stolen_tasks.fetch_add(batch.len(), Ordering::Relaxed);
            steal_batch_sizes().record(batch.len() as u64);
            let first = batch.pop_front();
            own.extend(batch);
            return first;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn single_worker_drains_in_order() {
        let queue = StealQueue::new(0..5, 1);
        let drained: Vec<i32> = std::iter::from_fn(|| queue.pop(0)).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert_eq!(queue.steals(), 0);
    }

    #[test]
    fn every_task_is_claimed_exactly_once_under_contention() {
        let total = 1000;
        let queue = StealQueue::new(0..total, 4);
        let claimed = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..4 {
                let queue = &queue;
                let claimed = &claimed;
                scope.spawn(move || {
                    while let Some(task) = queue.pop(w) {
                        claimed.lock().push(task);
                    }
                });
            }
        });
        let claimed = claimed.into_inner();
        assert_eq!(claimed.len(), total as usize);
        assert_eq!(claimed.iter().copied().collect::<BTreeSet<_>>().len(), total as usize);
    }

    #[test]
    fn steal_moves_half_of_the_victims_backlog() {
        // two workers, all ten tasks distributed round-robin: five each.
        // worker 1 drains its own five, then steals ceil(5/2) = 3 of 0's.
        let queue = StealQueue::new(0..10, 2);
        for _ in 0..5 {
            queue.pop(1).unwrap();
        }
        assert_eq!(queue.steals(), 0);
        queue.pop(1).unwrap();
        assert_eq!(queue.steals(), 1);
        assert_eq!(queue.stolen_tasks(), 3);
        // the victim still holds the front of its deque
        assert_eq!(queue.pop(0), Some(0));
    }

    #[test]
    fn empty_queue_pops_none() {
        let queue: StealQueue<u8> = StealQueue::new(std::iter::empty(), 3);
        assert_eq!(queue.pop(0), None);
        assert_eq!(queue.pop(2), None);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let queue = StealQueue::new(0..2, 8);
        let drained: Vec<i32> = std::iter::from_fn(|| queue.pop(7)).collect();
        assert_eq!(drained.len(), 2);
    }
}
