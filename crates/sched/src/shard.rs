//! Deterministic shard planning for multi-process verification.
//!
//! The all-pairs fattree benchmarks produce one independent check per node,
//! so they shard trivially — *if* every participant agrees on the
//! partition. A [`ShardPlan`] is a pure function of `(node set, shard count,
//! class key)`: the coordinator and each worker subprocess rebuild the same
//! instance and recompute the same plan, so no node list ever crosses a
//! process boundary, only the shard *index* does.
//!
//! Nodes are grouped by a caller-supplied *symmetry-class* key (for
//! fattrees: core / aggregation / edge, cf. `Topology::node_class`) and each
//! class is striped round-robin across shards. Classes differ systematically
//! in verification cost — an aggregation node's inductive condition sees
//! `k` neighbors, an edge node's `k/2` — so striping *within* classes gives
//! every shard the same cost mix instead of handing one shard all the
//! expensive nodes.

use std::collections::BTreeMap;

use timepiece_topology::NodeId;

/// A deterministic assignment of nodes to shards.
///
/// # Example
///
/// ```
/// use timepiece_sched::ShardPlan;
/// use timepiece_topology::NodeId;
///
/// let nodes: Vec<NodeId> = (0..10u32).map(NodeId::new).collect();
/// // two classes: even and odd indices
/// let plan = ShardPlan::by_class(nodes.iter().copied(), 3, |v| v.index() % 2);
/// assert_eq!(plan.shard_count(), 3);
/// assert!(plan.covers(nodes.iter().copied()));
/// // every node is assigned to exactly one shard
/// let total: usize = (0..3).map(|s| plan.nodes_of(s).len()).sum();
/// assert_eq!(total, 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<Vec<NodeId>>,
}

impl ShardPlan {
    /// Plans `shards` shards over `nodes`, striping each symmetry class
    /// (nodes with equal `class_of` keys) round-robin across shards.
    ///
    /// Deterministic: the same nodes, shard count and class keys always
    /// produce the same plan, regardless of input order.
    pub fn by_class<K: Ord>(
        nodes: impl IntoIterator<Item = NodeId>,
        shards: usize,
        class_of: impl Fn(NodeId) -> K,
    ) -> ShardPlan {
        let shards = shards.max(1);
        let mut classes: BTreeMap<K, Vec<NodeId>> = BTreeMap::new();
        for v in nodes {
            classes.entry(class_of(v)).or_default().push(v);
        }
        let mut plan = ShardPlan { shards: vec![Vec::new(); shards] };
        let mut cursor = 0usize;
        for (_, mut members) in classes {
            members.sort_unstable();
            members.dedup();
            for v in members {
                plan.shards[cursor % shards].push(v);
                cursor += 1;
            }
        }
        plan
    }

    /// A plan from an explicit partition, e.g. one computed by the
    /// cost-adaptive planner ([`crate::cost::plan_adaptive`]) or received
    /// over a coordinator protocol. The caller is responsible for the
    /// partition property; [`ShardPlan::covers`] checks it.
    pub fn from_shards(shards: Vec<Vec<NodeId>>) -> ShardPlan {
        ShardPlan { shards }
    }

    /// The number of shards planned.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The nodes assigned to `shard`, in deterministic order.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    pub fn nodes_of(&self, shard: usize) -> &[NodeId] {
        &self.shards[shard]
    }

    /// The shard a node was assigned to, if it is in the plan.
    pub fn shard_of(&self, v: NodeId) -> Option<usize> {
        self.shards.iter().position(|shard| shard.contains(&v))
    }

    /// Does the plan partition exactly `nodes` — every node assigned to
    /// precisely one shard, and no stranger assigned anywhere? This is the
    /// coverage check a shard coordinator runs before trusting merged
    /// reports.
    pub fn covers(&self, nodes: impl IntoIterator<Item = NodeId>) -> bool {
        let mut expected: Vec<NodeId> = nodes.into_iter().collect();
        expected.sort_unstable();
        expected.dedup();
        let mut assigned: Vec<NodeId> = self.shards.iter().flatten().copied().collect();
        let total = assigned.len();
        assigned.sort_unstable();
        assigned.dedup();
        assigned.len() == total && assigned == expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u32>) -> Vec<NodeId> {
        range.map(NodeId::new).collect()
    }

    #[test]
    fn plan_is_deterministic_and_order_independent() {
        let nodes = ids(0..20);
        let mut reversed = nodes.clone();
        reversed.reverse();
        let a = ShardPlan::by_class(nodes.iter().copied(), 4, |v| v.index() % 3);
        let b = ShardPlan::by_class(reversed, 4, |v| v.index() % 3);
        assert_eq!(a, b);
    }

    #[test]
    fn classes_are_striped_across_shards() {
        // one class of 9 "expensive" nodes must not land on a single shard
        let nodes = ids(0..9);
        let plan = ShardPlan::by_class(nodes.iter().copied(), 3, |_| 0u8);
        for shard in 0..3 {
            assert_eq!(plan.nodes_of(shard).len(), 3);
        }
    }

    #[test]
    fn covers_detects_missing_and_foreign_nodes() {
        let nodes = ids(0..6);
        let plan = ShardPlan::by_class(nodes.iter().copied(), 2, |v| v.index());
        assert!(plan.covers(nodes.iter().copied()));
        assert!(!plan.covers(ids(0..5)), "foreign assigned node");
        assert!(!plan.covers(ids(0..7)), "missing node");
    }

    #[test]
    fn shard_of_locates_nodes() {
        let nodes = ids(0..5);
        let plan = ShardPlan::by_class(nodes.iter().copied(), 2, |v| v.index());
        for v in nodes {
            let shard = plan.shard_of(v).unwrap();
            assert!(plan.nodes_of(shard).contains(&v));
        }
        assert_eq!(plan.shard_of(NodeId::new(99)), None);
    }

    #[test]
    fn one_shard_takes_everything_and_duplicates_collapse() {
        let mut nodes = ids(0..4);
        nodes.push(NodeId::new(0));
        let plan = ShardPlan::by_class(nodes, 1, |_| ());
        assert_eq!(plan.nodes_of(0).len(), 4);
        assert!(plan.covers(ids(0..4)));
    }

    #[test]
    fn more_shards_than_nodes_leaves_empties() {
        let plan = ShardPlan::by_class(ids(0..2), 5, |v| v.index());
        assert_eq!(plan.shard_count(), 5);
        assert!(plan.covers(ids(0..2)));
        assert_eq!((0..5).filter(|&s| plan.nodes_of(s).is_empty()).count(), 3);
    }
}
