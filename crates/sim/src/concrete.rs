//! A fast synchronous simulator over concrete routing algebras.

use timepiece_algebra::RoutingAlgebra;
use timepiece_topology::{NodeId, Topology};

/// A synchronous simulation trace over concrete routes.
///
/// `states[t][v]` is `σ(v)(t)`. Once the simulation converges the trace stops
/// growing; [`AlgebraTrace::state`] saturates at the stable state.
#[derive(Debug, Clone)]
pub struct AlgebraTrace<R> {
    states: Vec<Vec<R>>,
    converged_at: Option<usize>,
}

impl<R: Clone + PartialEq> AlgebraTrace<R> {
    /// Assembles a trace from raw state vectors (used by the delay simulator).
    pub(crate) fn from_states(states: Vec<Vec<R>>, converged_at: Option<usize>) -> Self {
        assert!(!states.is_empty(), "trace requires an initial state");
        AlgebraTrace { states, converged_at }
    }

    /// `σ(v)(t)`, saturating beyond the last simulated step.
    pub fn state(&self, v: NodeId, t: usize) -> &R {
        let t = t.min(self.states.len() - 1);
        &self.states[t][v.index()]
    }

    /// The first time step at which the state equals its predecessor, if the
    /// simulation converged within the step budget.
    pub fn converged_at(&self) -> Option<usize> {
        self.converged_at
    }

    /// The last computed state vector (the stable state if converged).
    pub fn stable_state(&self) -> &[R] {
        self.states.last().expect("trace has at least the initial state")
    }

    /// All computed state vectors, indexed by time.
    pub fn states(&self) -> &[Vec<R>] {
        &self.states
    }
}

/// Runs the synchronous semantics of equations (3)–(4) for at most
/// `max_steps` steps, stopping early on convergence.
///
/// # Example
///
/// See the crate-level example.
pub fn simulate_algebra<A: RoutingAlgebra>(
    topology: &Topology,
    alg: &A,
    max_steps: usize,
) -> AlgebraTrace<A::Route> {
    let initial: Vec<A::Route> = topology.nodes().map(|v| alg.initial(v)).collect();
    let mut states = vec![initial];
    let mut converged_at = None;
    for t in 1..=max_steps {
        let prev = &states[t - 1];
        let next: Vec<A::Route> = topology
            .nodes()
            .map(|v| {
                let transferred: Vec<A::Route> = topology
                    .preds(v)
                    .iter()
                    .map(|&u| alg.transfer((u, v), &prev[u.index()]))
                    .collect();
                alg.merge_all(alg.initial(v), transferred.iter())
            })
            .collect();
        let same = next == *prev;
        states.push(next);
        if same {
            converged_at = Some(t - 1);
            break;
        }
    }
    AlgebraTrace { states, converged_at }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_algebra::{Bgp, BgpRoute, EdgePolicy, ShortestPath, WidestPath};
    use timepiece_topology::gen;

    #[test]
    fn shortest_path_on_path_graph() {
        let g = gen::undirected_path(5);
        let dest = g.node_by_name("v0").unwrap();
        let trace = simulate_algebra(&g, &ShortestPath::new(dest), 32);
        assert_eq!(trace.converged_at(), Some(4));
        let stable = trace.stable_state();
        for (i, r) in stable.iter().enumerate() {
            assert_eq!(*r, Some(i as u64));
        }
    }

    #[test]
    fn state_saturates_past_convergence() {
        let g = gen::undirected_path(3);
        let dest = g.node_by_name("v0").unwrap();
        let trace = simulate_algebra(&g, &ShortestPath::new(dest), 32);
        let v2 = g.node_by_name("v2").unwrap();
        assert_eq!(trace.state(v2, 1000), &Some(2));
        assert_eq!(trace.state(v2, 0), &None);
    }

    #[test]
    fn unconverged_when_budget_too_small() {
        let g = gen::undirected_path(10);
        let dest = g.node_by_name("v0").unwrap();
        let trace = simulate_algebra(&g, &ShortestPath::new(dest), 3);
        assert_eq!(trace.converged_at(), None);
    }

    #[test]
    fn widest_path_converges() {
        let g = gen::undirected_path(4);
        let dest = g.node_by_name("v0").unwrap();
        let mut caps = std::collections::HashMap::new();
        // bottleneck on the middle link
        let v1 = g.node_by_name("v1").unwrap();
        let v2 = g.node_by_name("v2").unwrap();
        caps.insert((v1, v2), 5);
        caps.insert((v2, v1), 5);
        let alg = WidestPath::new(dest, caps, 100);
        let trace = simulate_algebra(&g, &alg, 32);
        assert!(trace.converged_at().is_some());
        let stable = trace.stable_state();
        assert_eq!(stable[1], Some(100));
        assert_eq!(stable[2], Some(5));
        assert_eq!(stable[3], Some(5));
    }

    #[test]
    fn bgp_running_example_matches_fig3() {
        // the §2 network: n -> v, w -> v, v <-> d, d -> e
        let mut g = timepiece_topology::Topology::new();
        let n = g.add_node("n");
        let w = g.add_node("w");
        let v = g.add_node("v");
        let d = g.add_node("d");
        let e = g.add_node("e");
        g.add_edge(n, v);
        g.add_edge(w, v);
        g.add_undirected(v, d);
        g.add_edge(d, e);

        let mut bgp = Bgp::new();
        bgp.set_initial(w, BgpRoute::originate());
        bgp.set_policy((n, v), EdgePolicy::deny());
        bgp.set_policy(
            (w, v),
            EdgePolicy { add_tags: vec!["internal".into()], ..Default::default() },
        );
        bgp.set_policy(
            (d, e),
            EdgePolicy { drop_unless_tag: Some("internal".into()), ..Default::default() },
        );

        let trace = simulate_algebra(&g, &bgp, 16);
        // Fig. 3: stabilizes at time 3 (state repeats at step 4)
        assert_eq!(trace.converged_at(), Some(3));
        let expect = |lp, len, tag: bool| {
            let mut r = BgpRoute { lp, len, tags: Default::default() };
            if tag {
                r.tags.insert("internal".into());
            }
            Some(r)
        };
        assert_eq!(trace.state(n, 4), &None);
        assert_eq!(trace.state(w, 4), &expect(100, 0, false));
        assert_eq!(trace.state(v, 4), &expect(100, 1, true));
        assert_eq!(trace.state(d, 4), &expect(100, 2, true));
        assert_eq!(trace.state(e, 4), &expect(100, 3, true));
        // and the intermediate rows of the table
        assert_eq!(trace.state(v, 0), &None);
        assert_eq!(trace.state(v, 1), &expect(100, 1, true));
        assert_eq!(trace.state(d, 1), &None);
        assert_eq!(trace.state(d, 2), &expect(100, 2, true));
        assert_eq!(trace.state(e, 2), &None);
        assert_eq!(trace.state(e, 3), &expect(100, 3, true));
    }
}
