//! A bounded-delay asynchronous simulator.
//!
//! The paper's synchronous model (§4) captures the unique convergent state of
//! strictly monotonic algebras, and one possible execution otherwise. This
//! module simulates executions where each edge may deliver a route that is up
//! to `max_delay` steps stale, which lets tests confirm that monotonic
//! algebras converge to the same stable state regardless of message timing —
//! the assumption underpinning the paper's use of the synchronous semantics.

use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;

use timepiece_algebra::RoutingAlgebra;
use timepiece_topology::Topology;

use crate::concrete::AlgebraTrace;

/// Options for bounded-delay simulation.
#[derive(Debug, Clone, Copy)]
pub struct DelayOptions {
    /// Maximum staleness (in steps) of a delivered route; `0` is synchronous.
    pub max_delay: usize,
    /// Seed for the delay schedule.
    pub seed: u64,
    /// Step budget.
    pub max_steps: usize,
}

impl Default for DelayOptions {
    fn default() -> Self {
        DelayOptions { max_delay: 1, seed: 0, max_steps: 256 }
    }
}

/// Runs an asynchronous execution where edge `u → v` at step `t` delivers
/// `σ(u)(t − 1 − δ)` for a pseudorandom `δ ∈ [0, max_delay]` (clamped to
/// available history).
///
/// Convergence requires the state to stay unchanged for `max_delay + 1`
/// consecutive steps (so no stale message can still perturb it).
pub fn simulate_with_delay<A: RoutingAlgebra>(
    topology: &Topology,
    alg: &A,
    options: DelayOptions,
) -> AlgebraTrace<A::Route> {
    let mut rng = StdRng::seed_from_u64(options.seed);
    let initial: Vec<A::Route> = topology.nodes().map(|v| alg.initial(v)).collect();
    let mut states = vec![initial];
    let mut stable_for = 0usize;
    let mut converged_at = None;
    for t in 1..=options.max_steps {
        let next: Vec<A::Route> = topology
            .nodes()
            .map(|v| {
                let transferred: Vec<A::Route> = topology
                    .preds(v)
                    .iter()
                    .map(|&u| {
                        let delay = rng.random_range(0..=options.max_delay);
                        let idx = (t - 1).saturating_sub(delay);
                        alg.transfer((u, v), &states[idx][u.index()])
                    })
                    .collect();
                alg.merge_all(alg.initial(v), transferred.iter())
            })
            .collect();
        let same = next == *states.last().expect("nonempty");
        states.push(next);
        if same {
            stable_for += 1;
            if stable_for > options.max_delay {
                converged_at = Some(t - 1 - options.max_delay);
                break;
            }
        } else {
            stable_for = 0;
        }
    }
    rebuild_trace(states, converged_at)
}

fn rebuild_trace<R: Clone + PartialEq>(
    states: Vec<Vec<R>>,
    converged_at: Option<usize>,
) -> AlgebraTrace<R> {
    // AlgebraTrace has private fields; reconstruct through its public builder
    // path: we re-expose by transmuting through the same shape is not
    // possible, so AlgebraTrace provides a crate-internal constructor.
    AlgebraTrace::from_states(states, converged_at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_algebra::ShortestPath;
    use timepiece_topology::gen;

    #[test]
    fn zero_delay_matches_synchronous() {
        let g = gen::undirected_path(5);
        let dest = g.node_by_name("v0").unwrap();
        let alg = ShortestPath::new(dest);
        let sync = crate::concrete::simulate_algebra(&g, &alg, 64);
        let delayed =
            simulate_with_delay(&g, &alg, DelayOptions { max_delay: 0, seed: 1, max_steps: 64 });
        assert_eq!(sync.stable_state(), delayed.stable_state());
    }

    #[test]
    fn monotone_algebra_converges_to_same_fixpoint_under_delay() {
        let g = gen::random_connected(12, 0.3, 5);
        let dest = g.node_by_name("v0").unwrap();
        let alg = ShortestPath::new(dest);
        let sync = crate::concrete::simulate_algebra(&g, &alg, 256);
        for seed in 0..10 {
            for max_delay in [1usize, 2, 3] {
                let delayed =
                    simulate_with_delay(&g, &alg, DelayOptions { max_delay, seed, max_steps: 512 });
                assert!(
                    delayed.converged_at().is_some(),
                    "unconverged at delay {max_delay} seed {seed}"
                );
                assert_eq!(
                    sync.stable_state(),
                    delayed.stable_state(),
                    "fixpoint differs at delay {max_delay} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn delay_can_slow_convergence() {
        let g = gen::undirected_path(8);
        let dest = g.node_by_name("v0").unwrap();
        let alg = ShortestPath::new(dest);
        let sync = crate::concrete::simulate_algebra(&g, &alg, 256);
        let delayed =
            simulate_with_delay(&g, &alg, DelayOptions { max_delay: 3, seed: 11, max_steps: 512 });
        assert!(delayed.converged_at().unwrap() >= sync.converged_at().unwrap());
    }
}
