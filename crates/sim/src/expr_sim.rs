//! The reference simulator over expression-level networks.
//!
//! This simulator *interprets* the same terms the verifier compiles to SMT,
//! so a property proved by the verifier and a behavior observed here cannot
//! diverge. It is slower than [`crate::concrete`], and is the basis of the
//! soundness/completeness tests in `timepiece-core`.

use std::fmt;

use timepiece_algebra::{Network, PolicyError};
use timepiece_expr::{Env, EvalError, Expr, Value};
use timepiece_topology::NodeId;

/// An error raised during expression-level simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Evaluating a route expression failed (unbound symbolic, ill-typed
    /// network function).
    Eval(EvalError),
    /// Executing a declarative route policy failed (unbound symbolic in a
    /// guard, or a route value whose shape disagrees with the schema).
    Policy(PolicyError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Eval(e) => write!(f, "simulation failed to evaluate a route: {e}"),
            SimError::Policy(e) => write!(f, "simulation failed to apply a policy: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Eval(e) => Some(e),
            SimError::Policy(e) => Some(e),
        }
    }
}

impl From<EvalError> for SimError {
    fn from(e: EvalError) -> Self {
        SimError::Eval(e)
    }
}

impl From<PolicyError> for SimError {
    fn from(e: PolicyError) -> Self {
        SimError::Policy(e)
    }
}

/// A simulation trace of concrete route values, `states[t][v] = σ(v)(t)`.
#[derive(Debug, Clone)]
pub struct Trace {
    states: Vec<Vec<Value>>,
    converged_at: Option<usize>,
}

impl Trace {
    /// `σ(v)(t)`, saturating beyond the last simulated step.
    pub fn state(&self, v: NodeId, t: usize) -> &Value {
        let t = t.min(self.states.len() - 1);
        &self.states[t][v.index()]
    }

    /// The first `t` with `σ(·)(t) = σ(·)(t+1)`, if reached within budget.
    pub fn converged_at(&self) -> Option<usize> {
        self.converged_at
    }

    /// The last computed state vector (the stable state if converged).
    pub fn stable_state(&self) -> &[Value] {
        self.states.last().expect("trace has at least the initial state")
    }

    /// All computed state vectors, indexed by time.
    pub fn states(&self) -> &[Vec<Value>] {
        &self.states
    }
}

/// Runs the synchronous semantics of a closed instance of `net`.
///
/// `inputs` must bind every symbolic of the network to a concrete value
/// (closing the network, in the paper's sense); for networks without
/// symbolics pass an empty environment.
///
/// # Errors
///
/// Returns [`SimError::Eval`] if route expressions fail to evaluate, e.g.
/// when a symbolic is missing from `inputs`.
///
/// # Example
///
/// ```
/// use timepiece_algebra::NetworkBuilder;
/// use timepiece_expr::{Env, Expr, Type, Value};
/// use timepiece_sim::expr_sim::simulate;
/// use timepiece_topology::gen;
///
/// let g = gen::path(2);
/// let dest = g.node_by_name("v0").unwrap();
/// let net = NetworkBuilder::new(g, Type::Bool)
///     .merge(|a, b| a.clone().or(b.clone()))
///     .default_transfer(|r| r.clone())
///     .init(dest, Expr::bool(true))
///     .build()?;
/// let trace = simulate(&net, &Env::new(), 8)?;
/// assert_eq!(trace.stable_state(), [Value::Bool(true), Value::Bool(true)]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate(net: &Network, inputs: &Env, max_steps: usize) -> Result<Trace, SimError> {
    match net.policies() {
        // policy-built networks run the IR's direct value semantics — no
        // term construction or interpretation per step
        Some(_) => simulate_policies(net, inputs, max_steps),
        None => simulate_interpreted(net, inputs, max_steps),
    }
}

/// The term-interpretation path: build each step's route expression and run
/// it through the reference interpreter. Works for every network; kept
/// public so the policy fast path can be differentially tested against it.
///
/// # Errors
///
/// As [`simulate`].
pub fn simulate_interpreted(
    net: &Network,
    inputs: &Env,
    max_steps: usize,
) -> Result<Trace, SimError> {
    let g = net.topology();
    let initial: Vec<Value> =
        g.nodes().map(|v| net.init(v).eval(inputs)).collect::<Result<_, _>>()?;
    run_steps(initial, max_steps, |v, prev| {
        let neighbor_routes: Vec<Expr> =
            g.preds(v).iter().map(|&u| Expr::constant(prev[u.index()].clone())).collect();
        Ok(net.step(v, &neighbor_routes).eval(inputs)?)
    })
}

/// The declarative fast path: execute the policy IR's concrete semantics
/// directly on route values.
fn simulate_policies(net: &Network, inputs: &Env, max_steps: usize) -> Result<Trace, SimError> {
    let policies = net.policies().expect("caller checked for policies");
    let g = net.topology();
    let init: Vec<Value> = g.nodes().map(|v| net.init(v).eval(inputs)).collect::<Result<_, _>>()?;
    let failures = policies.failures.as_ref();
    run_steps(init.clone(), max_steps, |v, prev| {
        let mut acc = init[v.index()].clone();
        for &u in g.preds(v) {
            let policy = policies
                .policy((u, v))
                .unwrap_or_else(|| panic!("policy network lacks a policy for {u} -> {v}"));
            let mut transferred = policy.apply(&policies.schema, &prev[u.index()], inputs)?;
            if let Some(model) = failures {
                if model.tracks((u, v)) {
                    let name = timepiece_algebra::FailureModel::var_name(g, (u, v));
                    let down = inputs
                        .get(&name)
                        .and_then(Value::as_bool)
                        .ok_or(PolicyError::UnboundVar(name))?;
                    if down {
                        transferred = policies.schema.none_value();
                    }
                }
            }
            acc = policies.schema.merge_value(&acc, &transferred, inputs)?;
        }
        Ok(acc)
    })
}

/// The shared synchronous fixpoint loop around a per-node step function,
/// starting from an already-evaluated initial state.
fn run_steps(
    initial: Vec<Value>,
    max_steps: usize,
    mut step: impl FnMut(NodeId, &[Value]) -> Result<Value, SimError>,
) -> Result<Trace, SimError> {
    let nodes = initial.len();
    let mut states = vec![initial];
    let mut converged_at = None;
    for t in 1..=max_steps {
        let prev = &states[t - 1];
        let next: Vec<Value> =
            (0..nodes).map(|i| step(NodeId::new(i as u32), prev)).collect::<Result<_, _>>()?;
        let same = next == *prev;
        states.push(next);
        if same {
            converged_at = Some(t - 1);
            break;
        }
    }
    Ok(Trace { states, converged_at })
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_algebra::{NetworkBuilder, Symbolic};
    use timepiece_expr::Type;
    use timepiece_topology::gen;

    /// Hop-count network over an option<int> route type.
    fn hops_net(n: usize) -> Network {
        let g = gen::undirected_path(n);
        let dest = g.node_by_name("v0").unwrap();
        NetworkBuilder::new(g, Type::option(Type::Int))
            .merge(|a, b| {
                let a_better = a.clone().get_some().le(b.clone().get_some());
                b.clone().is_none().or(a.clone().is_some().and(a_better)).ite(a.clone(), b.clone())
            })
            .default_transfer(|r| {
                r.clone().match_option(Expr::none(Type::Int), |h| h.add(Expr::int(1)).some())
            })
            .init(dest, Expr::int(0).some())
            .build()
            .expect("valid network")
    }

    #[test]
    fn hop_count_converges_to_distances() {
        let net = hops_net(5);
        let trace = simulate(&net, &Env::new(), 32).unwrap();
        assert_eq!(trace.converged_at(), Some(4));
        for (i, v) in trace.stable_state().iter().enumerate() {
            assert_eq!(*v, Value::some(Value::int(i as i64)));
        }
    }

    #[test]
    fn agrees_with_concrete_simulator() {
        use timepiece_algebra::ShortestPath;
        let g = gen::undirected_path(6);
        let dest = g.node_by_name("v0").unwrap();
        let concrete = crate::concrete::simulate_algebra(&g, &ShortestPath::new(dest), 32);
        let net = hops_net(6);
        let expr = simulate(&net, &Env::new(), 32).unwrap();
        assert_eq!(concrete.converged_at(), expr.converged_at());
        for t in 0..=expr.converged_at().unwrap() {
            for v in net.topology().nodes() {
                let c = concrete.state(v, t);
                let e = expr.state(v, t);
                match (c, e) {
                    (None, Value::Option { value: None, .. }) => {}
                    (Some(h), Value::Option { value: Some(inner), .. }) => {
                        assert_eq!(inner.as_int(), Some(*h as i128));
                    }
                    other => panic!("mismatch at ({v}, {t}): {other:?}"),
                }
            }
        }
    }

    #[test]
    fn symbolic_network_requires_inputs() {
        let g = gen::path(2);
        let dest = g.node_by_name("v0").unwrap();
        let s = Symbolic::new("start", Type::Bool, None);
        let net = NetworkBuilder::new(g, Type::Bool)
            .merge(|a, b| a.clone().or(b.clone()))
            .default_transfer(|r| r.clone())
            .init(dest, s.var())
            .symbolic(s)
            .build()
            .unwrap();
        // missing input: error
        assert!(matches!(simulate(&net, &Env::new(), 8), Err(SimError::Eval(_))));
        // bound input: fine, and the bound value propagates
        let mut env = Env::new();
        env.bind("start", Value::Bool(true));
        let trace = simulate(&net, &env, 8).unwrap();
        let v1 = net.topology().node_by_name("v1").unwrap();
        assert_eq!(trace.state(v1, 4), &Value::Bool(true));
    }

    #[test]
    fn trace_accessors() {
        let net = hops_net(3);
        let trace = simulate(&net, &Env::new(), 32).unwrap();
        assert!(trace.states().len() >= 2);
        let v0 = net.topology().node_by_name("v0").unwrap();
        assert_eq!(trace.state(v0, 0), &Value::some(Value::int(0)));
    }
}
