//! Control plane simulators.
//!
//! Implements the network semantics `σ` of the paper (Fig. 11):
//!
//! * `σ(v)(0)    = I(v)`                                  — equation (3)
//! * `σ(v)(t+1)  = I(v) ⊕ ⨁_{u ∈ preds(v)} f_{uv}(σ(u)(t))` — equation (4)
//!
//! Three simulators are provided:
//!
//! * [`expr_sim::simulate`] — the reference simulator over the expression-level
//!   [`timepiece_algebra::Network`]; this is the `σ` that the verifier's
//!   soundness theorem quantifies over, and the one used for differential
//!   testing against the SMT backend.
//! * [`concrete::simulate_algebra`] — a fast simulator over any concrete
//!   [`timepiece_algebra::RoutingAlgebra`].
//! * [`delay::simulate_with_delay`] — a bounded-delay asynchronous simulator
//!   (§4, "Incorporating delay"): edges may deliver stale routes up to a
//!   configurable age, exercising convergence of monotonic algebras under
//!   asynchrony.
//!
//! # Example
//!
//! ```
//! use timepiece_algebra::ShortestPath;
//! use timepiece_sim::concrete::simulate_algebra;
//! use timepiece_topology::gen;
//!
//! let g = gen::undirected_path(4);
//! let dest = g.node_by_name("v0").unwrap();
//! let trace = simulate_algebra(&g, &ShortestPath::new(dest), 16);
//! assert_eq!(trace.converged_at(), Some(3));
//! assert_eq!(trace.stable_state()[3], Some(3)); // v3 is 3 hops from v0
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod concrete;
pub mod delay;
pub mod expr_sim;

pub use concrete::{simulate_algebra, AlgebraTrace};
pub use delay::{simulate_with_delay, DelayOptions};
pub use expr_sim::{simulate, simulate_interpreted, SimError, Trace};
