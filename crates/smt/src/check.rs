//! Validity checking of verification conditions.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use timepiece_expr::{Env, Expr};
use z3::{InterruptHandle, SatResult, Solver};

use crate::encode::{Encoder, TermCacheStats};
use crate::error::SmtError;

/// A named verification condition: prove `goal` under `assumptions`.
///
/// Assumptions typically constrain symbolic inputs (e.g. "the external route
/// is not tagged internal", "t ≥ 0"); per the paper (§4) they are assumed, not
/// checked.
#[derive(Debug, Clone)]
pub struct Vc {
    name: String,
    assumptions: Vec<Expr>,
    goal: Expr,
}

impl Vc {
    /// Creates a verification condition.
    pub fn new(
        name: impl Into<String>,
        assumptions: impl IntoIterator<Item = Expr>,
        goal: Expr,
    ) -> Vc {
        Vc { name: name.into(), assumptions: assumptions.into_iter().collect(), goal }
    }

    /// The condition's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The assumptions.
    pub fn assumptions(&self) -> &[Expr] {
        &self.assumptions
    }

    /// The goal to prove valid.
    pub fn goal(&self) -> &Expr {
        &self.goal
    }
}

/// A counterexample to a verification condition: a concrete assignment to
/// every free variable under which the assumptions hold but the goal fails.
#[derive(Debug, Clone)]
pub struct CounterExample {
    /// The name of the violated condition.
    pub vc_name: String,
    /// The falsifying assignment, decodable by the reference interpreter.
    pub assignment: Env,
}

impl fmt::Display for CounterExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample to {}:", self.vc_name)?;
        let mut entries: Vec<_> = self.assignment.iter().collect();
        entries.sort_by_key(|(k, _)| k.to_owned());
        for (name, value) in entries {
            writeln!(f, "  {name} = {value}")?;
        }
        Ok(())
    }
}

/// The outcome of a validity check.
#[derive(Debug, Clone)]
pub enum Validity {
    /// The goal holds for all assignments satisfying the assumptions.
    Valid,
    /// The goal fails for the returned assignment.
    Invalid(Box<CounterExample>),
    /// The solver gave up (timeout or incompleteness), with its reason.
    Unknown(String),
}

impl Validity {
    /// Is this `Valid`?
    pub fn is_valid(&self) -> bool {
        matches!(self, Validity::Valid)
    }
}

/// An incremental validity-checking session: one Z3 solver (and one term
/// encoder) discharging a *sequence* of verification conditions.
///
/// Each [`SolverSession::check`] runs inside a `push`/`pop` scope, so the
/// conditions stay logically independent while the solver context, variable
/// declarations and compiled-term cache are reused. The modular checker
/// discharges a node's three conditions on one session instead of three
/// fresh solvers.
///
/// Sessions live on the calling thread's Z3 context and cannot move between
/// threads; create one per worker.
///
/// # Example
///
/// ```
/// use timepiece_expr::{Expr, Type};
/// use timepiece_smt::{SolverSession, Vc};
///
/// let x = Expr::var("x", Type::Int);
/// let mut session = SolverSession::new(None);
/// let good = Vc::new("good", [x.clone().gt(Expr::int(2))], x.clone().gt(Expr::int(1)));
/// let bad = Vc::new("bad", [], x.ge(Expr::int(0)));
/// assert!(session.check(&good)?.is_valid());
/// assert!(!session.check(&bad)?.is_valid());
/// # Ok::<(), timepiece_smt::SmtError>(())
/// ```
#[derive(Debug)]
pub struct SolverSession {
    enc: Encoder,
    solver: Solver,
    /// Variables declared before this index have their well-formedness
    /// constraints *permanently* asserted at the solver's base level; later
    /// checks need not repeat them. Variables declared inside a check's
    /// scope get scoped assertions first, then are promoted to permanent on
    /// the next check — so per-check assertion work stays proportional to
    /// *newly seen* variables instead of every variable the session ever
    /// declared (long-lived batched sessions would otherwise age
    /// quadratically).
    wf_promoted: usize,
}

impl SolverSession {
    /// Creates a session on the thread's Z3 context, optionally bounding each
    /// check's solver time.
    pub fn new(timeout: Option<Duration>) -> SolverSession {
        let solver = Solver::new();
        if let Some(t) = timeout {
            let mut params = z3::Params::new();
            // round sub-millisecond budgets up so a tiny timeout stays a timeout
            params.set_u32("timeout", t.as_millis().clamp(1, u128::from(u32::MAX)) as u32);
            solver.set_params(&params);
        }
        SolverSession { enc: Encoder::new(), solver, wf_promoted: 0 }
    }

    /// Checks whether one verification condition is valid.
    ///
    /// # Errors
    ///
    /// Returns [`SmtError`] if the condition is ill-typed or a counterexample
    /// model cannot be decoded.
    pub fn check(&mut self, vc: &Vc) -> Result<Validity, SmtError> {
        // promote well-formedness of variables declared by earlier checks to
        // the base level: their declarations outlive the pops, so their
        // invariants may too (they are per-variable facts, not part of any
        // one condition)
        for wf in self.enc.well_formed_from(self.wf_promoted) {
            self.solver.assert(wf);
        }
        self.wf_promoted = self.enc.decl_count();
        timepiece_trace::instant(timepiece_trace::Phase::Other, "push");
        self.solver.push();
        let result = self.check_pushed(vc);
        self.solver.pop(1);
        timepiece_trace::instant(timepiece_trace::Phase::Other, "pop");
        result
    }

    /// Hit/miss counters of this session's compiled-term cache.
    ///
    /// The cache is keyed by stable intern ids, so hits accumulate across
    /// every condition this session ever discharged — including conditions
    /// from *earlier sweep rows* when the session lives in a pool.
    pub fn term_cache_stats(&self) -> TermCacheStats {
        self.enc.term_cache_stats()
    }

    /// A [`Send`]/[`Sync`] handle another thread can use to interrupt this
    /// session's in-flight solver call (the check then reports
    /// [`Validity::Unknown`], or is dropped entirely under
    /// [`SolverSession::check_cancellable`]). Interrupting a session with no
    /// check in flight, or one that was since dropped, is a no-op.
    pub fn interrupt_handle(&self) -> InterruptHandle {
        self.solver.interrupt_handle()
    }

    /// [`SolverSession::check`] with cooperative cancellation: the `cancel`
    /// flag is consulted *between* push/pop scopes — before opening the
    /// check's scope and again after it closes — so a canceller never
    /// corrupts the session's incremental state.
    ///
    /// Returns `Ok(None)` when the check was abandoned: the flag was already
    /// set, or it was raised mid-check and the solver gave up (an `Unknown`
    /// under a raised flag is indistinguishable from the interrupt artifact,
    /// so it is discarded rather than reported). A check that *completed*
    /// with a definite verdict is returned even if the flag rose meanwhile.
    ///
    /// Pair the flag with [`SolverSession::interrupt_handle`] to also abort
    /// long solver calls already in flight; without the interrupt, the
    /// current call runs to completion before the flag is seen.
    ///
    /// # Errors
    ///
    /// As [`SolverSession::check`].
    pub fn check_cancellable(
        &mut self,
        vc: &Vc,
        cancel: &AtomicBool,
    ) -> Result<Option<Validity>, SmtError> {
        if cancel.load(Ordering::Acquire) {
            timepiece_trace::instant(timepiece_trace::Phase::Other, "cancel-skip");
            return Ok(None);
        }
        let result = self.check(vc)?;
        if matches!(result, Validity::Unknown(_)) && cancel.load(Ordering::Acquire) {
            timepiece_trace::instant(timepiece_trace::Phase::Other, "cancel-interrupt");
            return Ok(None);
        }
        Ok(Some(result))
    }

    fn check_pushed(&mut self, vc: &Vc) -> Result<Validity, SmtError> {
        {
            let _encode = timepiece_trace::span(timepiece_trace::Phase::Encode, vc.name());
            for a in &vc.assumptions {
                let compiled = self.enc.compile_bool(a)?;
                self.solver.assert(compiled);
            }
            let goal = self.enc.compile_bool(&vc.goal)?;
            // variables first declared by *this* condition get their
            // well-formedness constraints inside the scope (the pop removes
            // them; the next check promotes them to the base level)
            for wf in self.enc.well_formed_from(self.wf_promoted) {
                self.solver.assert(wf);
            }
            self.solver.assert(goal.not());
        }
        let sat = {
            let mut solve = timepiece_trace::span(timepiece_trace::Phase::Solve, vc.name());
            let sat = self.solver.check();
            solve.arg(
                "result",
                match sat {
                    SatResult::Unsat => "unsat",
                    SatResult::Sat => "sat",
                    SatResult::Unknown => "unknown",
                },
            );
            sat
        };
        match sat {
            SatResult::Unsat => Ok(Validity::Valid),
            SatResult::Sat => {
                let model = self
                    .solver
                    .get_model()
                    .ok_or_else(|| SmtError::ModelDecode("missing model".to_owned()))?;
                let assignment = self.enc.decode_model(&model)?;
                Ok(Validity::Invalid(Box::new(CounterExample {
                    vc_name: vc.name().to_owned(),
                    assignment,
                })))
            }
            SatResult::Unknown => Ok(Validity::Unknown(
                self.solver.get_reason_unknown().unwrap_or_else(|| "unknown".to_owned()),
            )),
        }
    }
}

/// Checks whether a verification condition is valid, optionally bounding
/// solver time.
///
/// One-shot convenience over [`SolverSession`]: a fresh solver per call. The
/// check runs on the calling thread's Z3 context; independent conditions may
/// be checked concurrently from different threads.
///
/// # Errors
///
/// Returns [`SmtError`] if the condition is ill-typed or a counterexample
/// model cannot be decoded.
///
/// # Example
///
/// ```
/// use timepiece_expr::{Expr, Type};
/// use timepiece_smt::{check_validity, Validity, Vc};
///
/// let x = Expr::var("x", Type::Int);
/// let vc = Vc::new("bad", [], x.ge(Expr::int(0)));
/// match check_validity(&vc, None)? {
///     Validity::Invalid(cex) => {
///         let v = cex.assignment.get("x").unwrap().as_int().unwrap();
///         assert!(v < 0);
///     }
///     other => panic!("expected a counterexample, got {other:?}"),
/// }
/// # Ok::<(), timepiece_smt::SmtError>(())
/// ```
pub fn check_validity(vc: &Vc, timeout: Option<Duration>) -> Result<Validity, SmtError> {
    SolverSession::new(timeout).check(vc)
}

/// A keyed collection of long-lived [`SolverSession`]s: one per
/// *algebra/encoder signature*.
///
/// Conditions that share a signature — the same route type, hence the same
/// variable declarations and well-formedness shapes — are discharged through
/// one session, so the solver context, declarations and compiled-term cache
/// are reused across *every* condition with that signature, not just within
/// one node's. A scheduler worker holds one pool and batches all the nodes it
/// owns through it; terms shared between nodes (symbolic-destination
/// constraints, role-templated interfaces) are then encoded once per worker
/// instead of once per node.
///
/// Like [`SolverSession`], a pool lives on its creating thread.
///
/// # Example
///
/// ```
/// use timepiece_expr::{Expr, Type};
/// use timepiece_smt::{SessionPool, Vc};
///
/// let mut pool = SessionPool::new(None);
/// let x = Expr::var("x", Type::Int);
/// let vc = Vc::new("t", [x.clone().gt(Expr::int(2))], x.gt(Expr::int(1)));
/// assert!(pool.session("int-routes").check(&vc)?.is_valid());
/// assert!(pool.session("int-routes").check(&vc)?.is_valid());
/// assert_eq!(pool.len(), 1); // same signature, same session
/// # Ok::<(), timepiece_smt::SmtError>(())
/// ```
#[derive(Debug)]
pub struct SessionPool {
    timeout: Option<Duration>,
    /// At most this many sessions are kept (`None`: unbounded); opening one
    /// beyond the bound evicts the least-recently-used session.
    capacity: Option<usize>,
    /// Least-recently-used order of signatures (front = coldest).
    order: Vec<String>,
    evictions: usize,
    sessions: HashMap<String, SolverSession>,
}

impl SessionPool {
    /// Creates an empty pool; every session it opens uses `timeout`.
    pub fn new(timeout: Option<Duration>) -> SessionPool {
        SessionPool {
            timeout,
            capacity: None,
            order: Vec::new(),
            evictions: 0,
            sessions: HashMap::new(),
        }
    }

    /// A pool keeping at most `capacity` sessions, evicting the
    /// least-recently-used one beyond that. Long-running services want this:
    /// every distinct policy edit opens a session under a fresh signature,
    /// and an unbounded pool would accumulate solver contexts forever.
    /// Evicted sessions drop their declarations, compiled-term caches *and*
    /// term-cache counters (so [`SessionPool::term_cache_stats`] only sums
    /// the live sessions).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(timeout: Option<Duration>, capacity: usize) -> SessionPool {
        assert!(capacity > 0, "a session pool needs room for at least one session");
        SessionPool { capacity: Some(capacity), ..SessionPool::new(timeout) }
    }

    /// The session for `signature`, created on first use.
    pub fn session(&mut self, signature: &str) -> &mut SolverSession {
        self.session_or_init(signature, |_| {})
    }

    /// The session for `signature`; `init` runs once, right after the
    /// session is created (e.g. to register its interrupt handle with a
    /// cancellation token).
    pub fn session_or_init(
        &mut self,
        signature: &str,
        init: impl FnOnce(&SolverSession),
    ) -> &mut SolverSession {
        match self.order.iter().position(|s| s == signature) {
            Some(pos) => {
                // touch: move to the warm end
                let key = self.order.remove(pos);
                self.order.push(key);
            }
            None => {
                self.order.push(signature.to_owned());
                if let Some(cap) = self.capacity {
                    while self.order.len() > cap {
                        let coldest = self.order.remove(0);
                        self.sessions.remove(&coldest);
                        self.evictions += 1;
                    }
                }
            }
        }
        self.sessions.entry(signature.to_owned()).or_insert_with(|| {
            let session = SolverSession::new(self.timeout);
            init(&session);
            session
        })
    }

    /// How many sessions this pool evicted to stay within its capacity.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// How many distinct signatures have sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Aggregated compiled-term cache counters across every session in the
    /// pool. Snapshot before and after a batch of checks to attribute the
    /// traffic (hits on structurally shared terms, including terms first
    /// compiled by *previous* batches through the same pool).
    pub fn term_cache_stats(&self) -> TermCacheStats {
        self.sessions
            .values()
            .map(SolverSession::term_cache_stats)
            .fold(TermCacheStats::default(), |acc, s| acc + s)
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timepiece_expr::Type;

    #[test]
    fn valid_condition() {
        let x = Expr::var("x", Type::Int);
        let vc = Vc::new("t", [x.clone().gt(Expr::int(2))], x.gt(Expr::int(1)));
        assert!(check_validity(&vc, None).unwrap().is_valid());
    }

    #[test]
    fn invalid_condition_has_decodable_counterexample() {
        let x = Expr::var("x", Type::Int);
        let vc = Vc::new("t", [x.clone().gt(Expr::int(0))], x.clone().gt(Expr::int(10)));
        match check_validity(&vc, None).unwrap() {
            Validity::Invalid(cex) => {
                // the assignment satisfies assumptions and falsifies the goal
                let env = &cex.assignment;
                assert!(x.clone().gt(Expr::int(0)).eval_bool(env).unwrap());
                assert!(!x.clone().gt(Expr::int(10)).eval_bool(env).unwrap());
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn assumptions_can_make_anything_valid() {
        let x = Expr::var("x", Type::Int);
        let vc = Vc::new("t", [Expr::bool(false)], x.gt(Expr::int(10)));
        assert!(check_validity(&vc, None).unwrap().is_valid());
    }

    #[test]
    fn counterexample_display_lists_assignment() {
        let x = Expr::var("x", Type::Int);
        let vc = Vc::new("myvc", [], x.ge(Expr::int(0)));
        match check_validity(&vc, None).unwrap() {
            Validity::Invalid(cex) => {
                let s = cex.to_string();
                assert!(s.contains("myvc"));
                assert!(s.contains("x ="));
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn session_isolates_conditions_across_pops() {
        let x = Expr::var("x", Type::Int);
        let mut session = SolverSession::new(None);
        // a condition with an unsatisfiable assumption is vacuously valid...
        let vacuous = Vc::new("vacuous", [Expr::bool(false)], x.clone().gt(Expr::int(10)));
        assert!(session.check(&vacuous).unwrap().is_valid());
        // ...and must NOT leak its `false` assumption into later checks
        let bad = Vc::new("bad", [], x.clone().gt(Expr::int(10)));
        assert!(!session.check(&bad).unwrap().is_valid());
        // nor must the previous negated goal constrain this valid one
        let good = Vc::new("good", [x.clone().gt(Expr::int(2))], x.gt(Expr::int(1)));
        assert!(session.check(&good).unwrap().is_valid());
    }

    #[test]
    fn session_reuses_declarations_consistently() {
        // the same variable appears in many conditions; the shared encoder
        // must keep one declaration and still decode models per check
        let x = Expr::var("x", Type::Int);
        let mut session = SolverSession::new(None);
        for bound in [0i64, 5, 50] {
            let vc = Vc::new(format!("gt-{bound}"), [], x.clone().gt(Expr::int(bound)));
            match session.check(&vc).unwrap() {
                Validity::Invalid(cex) => {
                    let v = cex.assignment.get("x").unwrap().as_int().unwrap();
                    assert!(v <= i128::from(bound), "cex {v} for bound {bound}");
                }
                other => panic!("expected invalid, got {other:?}"),
            }
        }
    }

    #[test]
    fn session_rejects_inconsistent_redeclaration() {
        let mut session = SolverSession::new(None);
        let ok = Vc::new("int", [], Expr::var("x", Type::Int).ge(Expr::int(0)));
        let clash = Vc::new("bool", [], Expr::var("x", Type::Bool));
        assert!(session.check(&ok).is_ok());
        assert!(session.check(&clash).is_err());
    }

    #[test]
    fn cancellable_check_skips_when_flag_already_set() {
        let mut session = SolverSession::new(None);
        let vc = Vc::new("t", [], Expr::bool(true));
        let cancel = AtomicBool::new(true);
        assert!(session.check_cancellable(&vc, &cancel).unwrap().is_none());
        // the session's incremental state is untouched: clearing the flag
        // lets the very same condition go through
        cancel.store(false, Ordering::Release);
        let validity = session.check_cancellable(&vc, &cancel).unwrap();
        assert!(validity.expect("flag clear").is_valid());
    }

    #[test]
    fn cancellable_check_keeps_definite_verdicts() {
        // a verdict that completed before the flag rose is still reported
        let mut session = SolverSession::new(None);
        let x = Expr::var("x", Type::Int);
        let vc = Vc::new("t", [], x.ge(Expr::int(0)));
        let cancel = AtomicBool::new(false);
        let validity = session.check_cancellable(&vc, &cancel).unwrap();
        assert!(matches!(validity, Some(Validity::Invalid(_))));
    }

    #[test]
    fn session_pool_reuses_sessions_per_signature() {
        let mut pool = SessionPool::new(None);
        assert!(pool.is_empty());
        let x = Expr::var("x", Type::Int);
        let vc = Vc::new("t", [x.clone().gt(Expr::int(2))], x.clone().gt(Expr::int(1)));
        let mut inits = 0;
        for _ in 0..3 {
            let session = pool.session_or_init("sig-a", |_| inits += 1);
            assert!(session.check(&vc).unwrap().is_valid());
        }
        assert_eq!(inits, 1, "init runs only on creation");
        assert_eq!(pool.len(), 1);
        // a different signature opens a fresh session with its own encoder,
        // so a clashing redeclaration of `x` is fine there
        let clash = Vc::new("bool", [], Expr::var("x", Type::Bool));
        assert!(pool.session("sig-b").check(&clash).is_ok());
        assert_eq!(pool.len(), 2);
        // ...but not on the original session
        assert!(pool.session("sig-a").check(&clash).is_err());
    }

    #[test]
    fn bounded_pool_evicts_least_recently_used() {
        let mut pool = SessionPool::with_capacity(None, 2);
        let x = Expr::var("x", Type::Int);
        let vc = Vc::new("t", [x.clone().gt(Expr::int(2))], x.clone().gt(Expr::int(1)));
        assert!(pool.session("a").check(&vc).unwrap().is_valid());
        assert!(pool.session("b").check(&vc).unwrap().is_valid());
        // touch "a" so "b" is now the coldest
        pool.session("a");
        assert!(pool.session("c").check(&vc).unwrap().is_valid());
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.evictions(), 1);
        // "b" was evicted: recreating it evicts the new coldest ("a")
        let mut created = false;
        pool.session_or_init("b", |_| created = true);
        assert!(created, "evicted session must be rebuilt on next use");
        assert_eq!(pool.evictions(), 2);
        // an unbounded pool never evicts
        let mut pool = SessionPool::new(None);
        for sig in ["a", "b", "c", "d"] {
            pool.session(sig);
        }
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.evictions(), 0);
    }

    #[test]
    fn interrupt_handle_outlives_session() {
        let session = SolverSession::new(None);
        let handle = session.interrupt_handle();
        drop(session);
        handle.interrupt(); // no-op, must not crash
    }

    #[test]
    fn timeout_is_accepted() {
        // a trivial check under a generous timeout still succeeds
        let vc = Vc::new("t", [], Expr::bool(true));
        assert!(check_validity(&vc, Some(Duration::from_secs(5))).unwrap().is_valid());
    }

    #[test]
    fn vc_accessors() {
        let vc = Vc::new("n", [Expr::bool(true)], Expr::bool(true));
        assert_eq!(vc.name(), "n");
        assert_eq!(vc.assumptions().len(), 1);
        assert!(vc.goal().as_const().is_some());
    }
}
