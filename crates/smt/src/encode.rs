//! Compilation from expression terms to symbolic values.

use std::collections::HashMap;
use std::ops::{Add, AddAssign};

use timepiece_expr::{Expr, ExprKind, InternId, Type, TypeError, Value};
use z3::ast::{Bool, Int, BV};

use crate::error::SmtError;
use crate::sym::{set_width, Sym};

/// Hit/miss counters of an encoder's compiled-term cache.
///
/// With hash-consed terms the cache is keyed by stable [`InternId`]s, so a
/// hit can come from *any* earlier compilation through the same encoder —
/// another condition of the same node, another node, or another sweep row
/// entirely (encoders live inside `SolverSession`s that a `SessionPool`
/// keeps alive per signature). The cross-row hit rate is the number this
/// refactor exists to make nonzero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TermCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled a new term.
    pub misses: u64,
}

impl TermCacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache, in `0.0..=1.0`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The traffic between an `earlier` snapshot and this one.
    pub fn delta_since(&self, earlier: &TermCacheStats) -> TermCacheStats {
        TermCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

impl Add for TermCacheStats {
    type Output = TermCacheStats;
    fn add(self, rhs: TermCacheStats) -> TermCacheStats {
        TermCacheStats { hits: self.hits + rhs.hits, misses: self.misses + rhs.misses }
    }
}

impl AddAssign for TermCacheStats {
    fn add_assign(&mut self, rhs: TermCacheStats) {
        *self = *self + rhs;
    }
}

/// Compiles [`Expr`] terms into [`Sym`] values against a single Z3
/// (thread-local) context.
///
/// The encoder declares free variables on first use and caches compiled
/// subterms by node identity, so shared subterms are compiled once.
///
/// # Example
///
/// ```
/// use timepiece_expr::{Expr, Type};
/// use timepiece_smt::Encoder;
///
/// let mut enc = Encoder::new();
/// let e = Expr::var("x", Type::Int).ge(Expr::int(0));
/// let sym = enc.compile(&e)?;
/// assert!(sym.as_bool().is_some());
/// # Ok::<(), timepiece_smt::SmtError>(())
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    vars: HashMap<String, (Sym, Type)>,
    /// Declaration order of `vars` keys: lets a long-lived session assert
    /// well-formedness constraints incrementally ([`Encoder::well_formed_from`])
    /// instead of re-asserting every variable ever declared on every check.
    decl_order: Vec<String>,
    /// Compiled subterms by intern id. Ids are stable and never reused (the
    /// hash-consing arena owns every node for the life of the process), so
    /// entries stay valid for as long as the encoder lives — across
    /// conditions, nodes, and sweep rows — and the cache no longer needs to
    /// pin an `Expr` handle to guard against address reuse.
    cache: HashMap<InternId, Sym>,
    hits: u64,
    misses: u64,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Declares (or retrieves) the symbolic constant for variable `name`.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::InconsistentVar`] (wrapped) if `name` was
    /// previously declared at a different type.
    pub fn declare(&mut self, name: &str, ty: &Type) -> Result<Sym, SmtError> {
        if let Some((sym, prev)) = self.vars.get(name) {
            if prev != ty {
                return Err(SmtError::IllTyped(TypeError::InconsistentVar {
                    name: name.to_owned(),
                    first: prev.clone(),
                    second: ty.clone(),
                }));
            }
            return Ok(sym.clone());
        }
        let sym = Sym::declare(name, ty);
        self.vars.insert(name.to_owned(), (sym.clone(), ty.clone()));
        self.decl_order.push(name.to_owned());
        Ok(sym)
    }

    /// How many variables have been declared (the cursor for
    /// [`Encoder::well_formed_from`]).
    pub fn decl_count(&self) -> usize {
        self.decl_order.len()
    }

    /// Well-formedness constraints of the variables declared at position
    /// `start` onward (in declaration order). With `start = 0` this is every
    /// constraint of [`Encoder::well_formed`].
    pub fn well_formed_from(&self, start: usize) -> Vec<Bool> {
        let mut out = Vec::new();
        for name in &self.decl_order[start.min(self.decl_order.len())..] {
            let (sym, _) = &self.vars[name];
            sym.well_formed(&mut out);
        }
        out
    }

    /// The declared variables, with their symbolic values and types.
    pub fn vars(&self) -> impl Iterator<Item = (&str, &Sym, &Type)> {
        self.vars.iter().map(|(n, (s, t))| (n.as_str(), s, t))
    }

    /// Collects well-formedness constraints for all declared variables.
    pub fn well_formed(&self) -> Vec<Bool> {
        let mut out = Vec::new();
        for (sym, _) in self.vars.values() {
            sym.well_formed(&mut out);
        }
        out
    }

    /// Decodes every declared variable under a model into an environment
    /// suitable for the reference interpreter.
    ///
    /// # Errors
    ///
    /// Returns [`SmtError::ModelDecode`] if any component fails to decode.
    pub fn decode_model(&self, model: &z3::Model) -> Result<timepiece_expr::Env, SmtError> {
        let mut env = timepiece_expr::Env::new();
        for (name, (sym, ty)) in &self.vars {
            env.bind(name.clone(), sym.decode(model, ty)?);
        }
        Ok(env)
    }

    /// Compiles a term to its symbolic value, declaring free variables on the
    /// way.
    ///
    /// # Errors
    ///
    /// Returns [`SmtError::IllTyped`] for ill-typed terms and
    /// [`SmtError::IntTooLarge`] for out-of-range integer literals.
    pub fn compile(&mut self, e: &Expr) -> Result<Sym, SmtError> {
        if let Some(s) = self.cache.get(&e.node_id()) {
            self.hits += 1;
            return Ok(s.clone());
        }
        let s = self.compile_uncached(e)?;
        self.misses += 1;
        self.cache.insert(e.node_id(), s.clone());
        Ok(s)
    }

    /// Cumulative hit/miss counters of the compiled-term cache.
    pub fn term_cache_stats(&self) -> TermCacheStats {
        TermCacheStats { hits: self.hits, misses: self.misses }
    }

    /// Compiles a boolean term, failing if it is not boolean.
    ///
    /// # Errors
    ///
    /// As [`Encoder::compile`], plus a type error for non-boolean terms.
    pub fn compile_bool(&mut self, e: &Expr) -> Result<Bool, SmtError> {
        match self.compile(e)? {
            Sym::Bool(b) => Ok(b),
            _ => Err(SmtError::IllTyped(TypeError::Mismatch {
                context: "smt goal",
                expected: Type::Bool,
                found: e.type_of()?,
            })),
        }
    }

    fn compile_bools(&mut self, xs: &[Expr]) -> Result<Vec<Bool>, SmtError> {
        xs.iter().map(|x| self.compile_bool(x)).collect()
    }

    fn compile_uncached(&mut self, e: &Expr) -> Result<Sym, SmtError> {
        let unsupported = |context: &'static str, found: Type| {
            SmtError::IllTyped(TypeError::Unsupported { context, found })
        };
        Ok(match e.kind() {
            ExprKind::Var(name, ty) => self.declare(name, ty)?,
            ExprKind::Const(v) => Sym::constant(v)?,
            ExprKind::Not(a) => Sym::Bool(self.compile_bool(a)?.not()),
            ExprKind::And(xs) => Sym::Bool(Bool::and(&self.compile_bools(xs)?)),
            ExprKind::Or(xs) => Sym::Bool(Bool::or(&self.compile_bools(xs)?)),
            ExprKind::Implies(a, b) => {
                let a = self.compile_bool(a)?;
                let b = self.compile_bool(b)?;
                Sym::Bool(a.implies(&b))
            }
            ExprKind::Ite(c, t, f) => {
                let c = self.compile_bool(c)?;
                let t = self.compile(t)?;
                let f = self.compile(f)?;
                Sym::ite(&c, &t, &f)
            }
            ExprKind::Eq(a, b) => {
                let a = self.compile(a)?;
                let b = self.compile(b)?;
                Sym::Bool(a.eq(&b))
            }
            ExprKind::Lt(a, b) => match (self.compile(a)?, self.compile(b)?) {
                (Sym::Int(x), Sym::Int(y)) => Sym::Bool(x.lt(&y)),
                (Sym::BV(x), Sym::BV(y)) => Sym::Bool(x.bvult(&y)),
                _ => return Err(unsupported("lt", e.type_of()?)),
            },
            ExprKind::Le(a, b) => match (self.compile(a)?, self.compile(b)?) {
                (Sym::Int(x), Sym::Int(y)) => Sym::Bool(x.le(&y)),
                (Sym::BV(x), Sym::BV(y)) => Sym::Bool(x.bvule(&y)),
                _ => return Err(unsupported("le", e.type_of()?)),
            },
            ExprKind::Add(a, b) => match (self.compile(a)?, self.compile(b)?) {
                (Sym::Int(x), Sym::Int(y)) => Sym::Int(Int::add(&[x, y])),
                (Sym::BV(x), Sym::BV(y)) => Sym::BV(x.bvadd(&y)),
                _ => return Err(unsupported("add", e.type_of()?)),
            },
            ExprKind::Sub(a, b) => match (self.compile(a)?, self.compile(b)?) {
                (Sym::Int(x), Sym::Int(y)) => Sym::Int(Int::sub(&[x, y])),
                (Sym::BV(x), Sym::BV(y)) => Sym::BV(x.bvsub(&y)),
                _ => return Err(unsupported("sub", e.type_of()?)),
            },
            ExprKind::None(payload) => Sym::Option {
                is_some: Bool::from_bool(false),
                payload: Box::new(Sym::constant(&Value::default_of(payload))?),
            },
            ExprKind::Some(a) => {
                Sym::Option { is_some: Bool::from_bool(true), payload: Box::new(self.compile(a)?) }
            }
            ExprKind::IsSome(a) => match self.compile(a)? {
                Sym::Option { is_some, .. } => Sym::Bool(is_some),
                _ => return Err(unsupported("is_some", e.type_of()?)),
            },
            ExprKind::GetSome(a) => match self.compile(a)? {
                Sym::Option { payload, .. } => *payload,
                _ => return Err(unsupported("get_some", e.type_of()?)),
            },
            ExprKind::MkRecord(def, fields) => Sym::Record {
                def: std::sync::Arc::clone(def),
                fields: fields.iter().map(|f| self.compile(f)).collect::<Result<_, _>>()?,
            },
            ExprKind::GetField(a, name) => match self.compile(a)? {
                Sym::Record { def, fields } => {
                    let i = def.field_index(name).ok_or_else(|| {
                        SmtError::IllTyped(TypeError::NoSuchField {
                            record: def.name().to_owned(),
                            field: name.clone(),
                        })
                    })?;
                    fields[i].clone()
                }
                _ => return Err(unsupported("get_field", e.type_of()?)),
            },
            ExprKind::WithField(a, name, v) => match self.compile(a)? {
                Sym::Record { def, mut fields } => {
                    let i = def.field_index(name).ok_or_else(|| {
                        SmtError::IllTyped(TypeError::NoSuchField {
                            record: def.name().to_owned(),
                            field: name.clone(),
                        })
                    })?;
                    fields[i] = self.compile(v)?;
                    Sym::Record { def, fields }
                }
                _ => return Err(unsupported("with_field", e.type_of()?)),
            },
            ExprKind::SetContains(a, tag) => match self.compile(a)? {
                Sym::Set { def, mask } => {
                    let i = tag_index(&def, tag)?;
                    Sym::Bool(mask.extract(i, i).eq(BV::from_u64(1, 1)))
                }
                _ => return Err(unsupported("set_contains", e.type_of()?)),
            },
            ExprKind::SetAdd(a, tag) => match self.compile(a)? {
                Sym::Set { def, mask } => {
                    let w = set_width(def.universe().len());
                    let i = tag_index(&def, tag)?;
                    let bit = BV::from_u64(1u64 << i, w);
                    Sym::Set { mask: mask.bvor(&bit), def }
                }
                _ => return Err(unsupported("set_add", e.type_of()?)),
            },
            ExprKind::SetRemove(a, tag) => match self.compile(a)? {
                Sym::Set { def, mask } => {
                    let w = set_width(def.universe().len());
                    let i = tag_index(&def, tag)?;
                    let keep = BV::from_u64(!(1u64 << i) & mask_all(w), w);
                    Sym::Set { mask: mask.bvand(&keep), def }
                }
                _ => return Err(unsupported("set_remove", e.type_of()?)),
            },
            ExprKind::SetUnion(a, b) => match (self.compile(a)?, self.compile(b)?) {
                (Sym::Set { def, mask: x }, Sym::Set { mask: y, .. }) => {
                    Sym::Set { mask: x.bvor(&y), def }
                }
                _ => return Err(unsupported("set_union", e.type_of()?)),
            },
            ExprKind::SetInter(a, b) => match (self.compile(a)?, self.compile(b)?) {
                (Sym::Set { def, mask: x }, Sym::Set { mask: y, .. }) => {
                    Sym::Set { mask: x.bvand(&y), def }
                }
                _ => return Err(unsupported("set_inter", e.type_of()?)),
            },
        })
    }
}

fn tag_index(def: &timepiece_expr::SetDef, tag: &str) -> Result<u32, SmtError> {
    def.tag_index(tag).map(|i| i as u32).ok_or_else(|| {
        SmtError::IllTyped(TypeError::NoSuchTag { set: def.name().to_owned(), tag: tag.to_owned() })
    })
}

fn mask_all(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use z3::{SatResult, Solver};

    fn assert_valid(e: &Expr) {
        let mut enc = Encoder::new();
        let goal = enc.compile_bool(e).unwrap();
        let solver = Solver::new();
        for wf in enc.well_formed() {
            solver.assert(wf);
        }
        solver.assert(goal.not());
        assert_eq!(solver.check(), SatResult::Unsat, "expected valid: {e}");
    }

    fn assert_invalid(e: &Expr) {
        let mut enc = Encoder::new();
        let goal = enc.compile_bool(e).unwrap();
        let solver = Solver::new();
        for wf in enc.well_formed() {
            solver.assert(wf);
        }
        solver.assert(goal.not());
        assert_eq!(solver.check(), SatResult::Sat, "expected invalid: {e}");
    }

    #[test]
    fn arithmetic_facts() {
        let x = Expr::var("x", Type::Int);
        assert_valid(&x.clone().add(Expr::int(1)).gt(x.clone()));
        assert_invalid(&x.clone().sub(Expr::int(1)).ge(x));
    }

    #[test]
    fn bitvectors_wrap() {
        let x = Expr::var("x", Type::BitVec(8));
        // wrapping: x + 1 > x is NOT valid at 8 bits
        assert_invalid(&x.clone().add(Expr::bv(1, 8)).gt(x.clone()));
        // but x & mask facts hold: x <= 255
        assert_valid(&x.le(Expr::bv(255, 8)));
    }

    #[test]
    fn option_facts() {
        let ty = Type::option(Type::Int);
        let o = Expr::var("o", ty.clone());
        // an option is none or some
        assert_valid(&o.clone().is_some().or(o.clone().is_none()));
        // some(get_some(o)) == o only when present
        let rebuilt = o.clone().get_some().some();
        assert_valid(&o.clone().is_some().implies(rebuilt.clone().eq(o.clone())));
        assert_invalid(&rebuilt.eq(o));
    }

    #[test]
    fn record_update_facts() {
        let ty = Type::record("R", [("a", Type::Int), ("b", Type::Bool)]);
        let r = Expr::var("r", ty);
        let upd = r.clone().with_field("a", Expr::int(5));
        assert_valid(&upd.clone().field("a").eq(Expr::int(5)));
        assert_valid(&upd.field("b").eq(r.field("b")));
    }

    #[test]
    fn set_facts() {
        let ty = Type::set("T", ["x", "y", "z"]);
        let s = Expr::var("s", ty);
        assert_valid(&s.clone().add_tag("x").contains("x"));
        assert_valid(&s.clone().remove_tag("y").contains("y").not());
        assert_valid(
            &s.clone().add_tag("x").remove_tag("x").contains("y").iff(s.clone().contains("y")),
        );
        let t = Expr::var("t", Type::set("T2", ["x", "y", "z"]));
        let _ = t; // different defs cannot mix (checked by typechecker)
        assert_valid(&s.clone().union(s.clone()).eq(s.clone()));
        assert_valid(&s.clone().intersect(s.clone()).eq(s));
    }

    #[test]
    fn enum_well_formedness_limits_models() {
        let ty = Type::enumeration("O", ["a", "b", "c"]);
        let o = Expr::var("o", ty.clone());
        let def = ty.enum_def().unwrap();
        // valid: o is one of the three variants (requires well-formedness)
        let one_of = Expr::or_all(
            def.variants()
                .iter()
                .map(|v| o.clone().eq(Expr::constant(Value::enum_variant(def, v)))),
        );
        assert_valid(&one_of);
    }

    #[test]
    fn inconsistent_var_types_rejected() {
        let mut enc = Encoder::new();
        enc.declare("x", &Type::Int).unwrap();
        assert!(enc.declare("x", &Type::Bool).is_err());
    }

    #[test]
    fn model_decoding_roundtrips() {
        let ty = Type::option(Type::record(
            "R",
            [("lp", Type::BitVec(32)), ("tags", Type::set("T", ["bte"]))],
        ));
        let o = Expr::var("o", ty.clone());
        let constraint = o
            .clone()
            .is_some()
            .and(o.clone().get_some().field("lp").eq(Expr::bv(200, 32)))
            .and(o.clone().get_some().field("tags").contains("bte"));
        let mut enc = Encoder::new();
        let c = enc.compile_bool(&constraint).unwrap();
        let solver = Solver::new();
        solver.assert(c);
        assert_eq!(solver.check(), SatResult::Sat);
        let model = solver.get_model().unwrap();
        let env = enc.decode_model(&model).unwrap();
        // decoded value satisfies the constraint per the interpreter
        assert!(constraint.eval_bool(&env).unwrap());
    }
}
