//! Errors raised while encoding or solving.

use std::fmt;

use timepiece_expr::TypeError;

/// An error raised by the SMT backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmtError {
    /// The term to encode was ill-typed.
    IllTyped(TypeError),
    /// An integer constant was too large for the Z3 binding (|i| > i64::MAX).
    IntTooLarge(i128),
    /// A model returned by Z3 could not be decoded back into values.
    ModelDecode(String),
}

impl fmt::Display for SmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmtError::IllTyped(e) => write!(f, "ill-typed term: {e}"),
            SmtError::IntTooLarge(i) => {
                write!(f, "integer constant {i} exceeds the solver binding range")
            }
            SmtError::ModelDecode(what) => write!(f, "could not decode model value for {what}"),
        }
    }
}

impl std::error::Error for SmtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SmtError::IllTyped(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TypeError> for SmtError {
    fn from(e: TypeError) -> Self {
        SmtError::IllTyped(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(
            SmtError::IntTooLarge(1i128 << 100).to_string(),
            format!("integer constant {} exceeds the solver binding range", 1i128 << 100)
        );
        assert!(SmtError::ModelDecode("x".into()).to_string().contains("x"));
    }
}
