//! Z3 backend for the Timepiece expression IR.
//!
//! This crate gives the IR of [`timepiece_expr`] its *symbolic* semantics: a
//! term is compiled to a structural symbolic value (records and options become
//! tuples of Z3 terms, mirroring the Zen encoding used by the paper), and
//! verification conditions are discharged by asking Z3 whether the negation of
//! a goal is satisfiable under assumptions.
//!
//! The compiled semantics agrees with the reference interpreter in
//! `timepiece_expr::eval`; the two backends are differentially tested against
//! each other in this crate's test suite.
//!
//! Z3 0.20 contexts are thread-local, so independent checks may run on
//! separate threads with zero shared state — this is what makes Timepiece's
//! modular checks embarrassingly parallel.
//!
//! # Example
//!
//! ```
//! use timepiece_expr::{Expr, Type};
//! use timepiece_smt::{check_validity, Validity, Vc};
//!
//! let x = Expr::var("x", Type::Int);
//! let vc = Vc::new(
//!     "nonneg-add",
//!     [x.clone().ge(Expr::int(0))],
//!     x.add(Expr::int(1)).ge(Expr::int(1)),
//! );
//! assert!(matches!(check_validity(&vc, None)?, Validity::Valid));
//! # Ok::<(), timepiece_smt::SmtError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod check;
pub mod encode;
pub mod error;
pub mod sym;

pub use check::{check_validity, CounterExample, SessionPool, SolverSession, Validity, Vc};
pub use encode::{Encoder, TermCacheStats};
pub use error::SmtError;
pub use sym::Sym;
pub use z3::InterruptHandle;
