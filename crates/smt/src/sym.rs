//! Structural symbolic values.
//!
//! A [`Sym`] mirrors the shape of a [`Type`]: scalars are single Z3 terms,
//! records are vectors of components, and options are a presence bit plus a
//! payload. Compound values never become single SMT terms — this avoids
//! datatype sorts and keeps the encoding in quantifier-free core theories
//! (`QF_UFBVLIA`-ish), exactly like the Zen encoding used by the paper.

use std::sync::Arc;

use timepiece_expr::{RecordDef, SetDef, Type, Value};
use z3::ast::{Bool, Int, BV};

use crate::error::SmtError;

/// A symbolic value: the Z3-side image of an expression.
#[derive(Debug, Clone)]
pub enum Sym {
    /// A boolean term.
    Bool(Bool),
    /// A bitvector term (width tracked by Z3).
    BV(BV),
    /// An unbounded integer term.
    Int(Int),
    /// An enum, encoded as a small bitvector index.
    Enum {
        /// Number of variants (for well-formedness constraints).
        variants: usize,
        /// The index term, of width [`enum_width`].
        index: BV,
    },
    /// An option: a presence bit plus a (total) payload.
    Option {
        /// Whether the value is present.
        is_some: Bool,
        /// The payload; meaningful only when `is_some`, but always defined.
        payload: Box<Sym>,
    },
    /// A record: one component per field, in definition order.
    Record {
        /// The record definition.
        def: Arc<RecordDef>,
        /// The field components.
        fields: Vec<Sym>,
    },
    /// A set over a fixed universe, as a bitvector mask.
    Set {
        /// The set definition.
        def: Arc<SetDef>,
        /// The mask term; bit `i` ⇔ tag `i` present.
        mask: BV,
    },
}

/// The bitvector width used to encode an enum with `n` variants.
pub fn enum_width(n: usize) -> u32 {
    let mut w = 1;
    while (1usize << w) < n {
        w += 1;
    }
    w
}

/// The bitvector width used to encode a set over a universe of `n` tags.
pub fn set_width(n: usize) -> u32 {
    n.max(1) as u32
}

impl Sym {
    /// Declares a fresh structural symbolic constant of type `ty` named
    /// `name` (components get derived names such as `name.field`).
    pub fn declare(name: &str, ty: &Type) -> Sym {
        match ty {
            Type::Bool => Sym::Bool(Bool::new_const(name)),
            Type::BitVec(w) => Sym::BV(BV::new_const(name, *w)),
            Type::Int => Sym::Int(Int::new_const(name)),
            Type::Enum(def) => Sym::Enum {
                variants: def.variants().len(),
                index: BV::new_const(name, enum_width(def.variants().len())),
            },
            Type::Option(payload) => Sym::Option {
                is_some: Bool::new_const(format!("{name}?")),
                payload: Box::new(Sym::declare(&format!("{name}!"), payload)),
            },
            Type::Record(def) => Sym::Record {
                def: Arc::clone(def),
                fields: def
                    .fields()
                    .iter()
                    .map(|(f, t)| Sym::declare(&format!("{name}.{f}"), t))
                    .collect(),
            },
            Type::Set(def) => Sym::Set {
                def: Arc::clone(def),
                mask: BV::new_const(name, set_width(def.universe().len())),
            },
        }
    }

    /// Embeds a concrete value as a constant symbolic value.
    ///
    /// # Errors
    ///
    /// Returns [`SmtError::IntTooLarge`] for integers outside the i64 range.
    pub fn constant(v: &Value) -> Result<Sym, SmtError> {
        Ok(match v {
            Value::Bool(b) => Sym::Bool(Bool::from_bool(*b)),
            Value::BitVec { width, bits } => Sym::BV(BV::from_u64(*bits, *width)),
            Value::Int(i) => {
                let i = i64::try_from(*i).map_err(|_| SmtError::IntTooLarge(*i))?;
                Sym::Int(Int::from_i64(i))
            }
            Value::Enum { def, index } => Sym::Enum {
                variants: def.variants().len(),
                index: BV::from_u64(*index as u64, enum_width(def.variants().len())),
            },
            Value::Option { payload, value } => {
                let payload_sym = match value {
                    Some(inner) => Sym::constant(inner)?,
                    None => Sym::constant(&Value::default_of(payload))?,
                };
                Sym::Option {
                    is_some: Bool::from_bool(value.is_some()),
                    payload: Box::new(payload_sym),
                }
            }
            Value::Record { def, fields } => Sym::Record {
                def: Arc::clone(def),
                fields: fields.iter().map(Sym::constant).collect::<Result<_, _>>()?,
            },
            Value::Set { def, mask } => Sym::Set {
                def: Arc::clone(def),
                mask: BV::from_u64(*mask, set_width(def.universe().len())),
            },
        })
    }

    /// The boolean term, if this is a boolean.
    pub fn as_bool(&self) -> Option<&Bool> {
        match self {
            Sym::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Structural equality between two symbolic values of the same type.
    ///
    /// Options compare presence first; payloads are compared only under
    /// presence (matching the interpreter's semantics where `None` payloads
    /// are irrelevant).
    ///
    /// # Panics
    ///
    /// Panics if the two values have different shapes (callers type check).
    pub fn eq(&self, other: &Sym) -> Bool {
        match (self, other) {
            (Sym::Bool(a), Sym::Bool(b)) => a.eq(b),
            (Sym::BV(a), Sym::BV(b)) => a.eq(b),
            (Sym::Int(a), Sym::Int(b)) => a.eq(b),
            (Sym::Enum { index: a, .. }, Sym::Enum { index: b, .. }) => a.eq(b),
            (Sym::Set { mask: a, .. }, Sym::Set { mask: b, .. }) => a.eq(b),
            (
                Sym::Option { is_some: sa, payload: pa },
                Sym::Option { is_some: sb, payload: pb },
            ) => {
                let same_presence = sa.eq(sb);
                let payload_eq_if_present = sa.implies(pa.eq(pb));
                Bool::and(&[same_presence, payload_eq_if_present])
            }
            (Sym::Record { fields: fa, .. }, Sym::Record { fields: fb, .. }) => {
                let eqs: Vec<Bool> = fa.iter().zip(fb).map(|(a, b)| a.eq(b)).collect();
                Bool::and(&eqs)
            }
            _ => panic!("Sym::eq on mismatched shapes"),
        }
    }

    /// Pointwise if-then-else over two symbolic values of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the two values have different shapes (callers type check).
    pub fn ite(cond: &Bool, then: &Sym, otherwise: &Sym) -> Sym {
        match (then, otherwise) {
            (Sym::Bool(a), Sym::Bool(b)) => Sym::Bool(cond.ite(a, b)),
            (Sym::BV(a), Sym::BV(b)) => Sym::BV(cond.ite(a, b)),
            (Sym::Int(a), Sym::Int(b)) => Sym::Int(cond.ite(a, b)),
            (Sym::Enum { variants, index: a }, Sym::Enum { index: b, .. }) => {
                Sym::Enum { variants: *variants, index: cond.ite(a, b) }
            }
            (Sym::Set { def, mask: a }, Sym::Set { mask: b, .. }) => {
                Sym::Set { def: Arc::clone(def), mask: cond.ite(a, b) }
            }
            (
                Sym::Option { is_some: sa, payload: pa },
                Sym::Option { is_some: sb, payload: pb },
            ) => {
                Sym::Option { is_some: cond.ite(sa, sb), payload: Box::new(Sym::ite(cond, pa, pb)) }
            }
            (Sym::Record { def, fields: fa }, Sym::Record { fields: fb, .. }) => Sym::Record {
                def: Arc::clone(def),
                fields: fa.iter().zip(fb).map(|(a, b)| Sym::ite(cond, a, b)).collect(),
            },
            _ => panic!("Sym::ite on mismatched shapes"),
        }
    }

    /// Well-formedness constraints for a declared symbolic value: enum
    /// indices must name real variants. (Other shapes are unconstrained.)
    pub fn well_formed(&self, out: &mut Vec<Bool>) {
        match self {
            Sym::Enum { variants, index } => {
                let n = *variants;
                let w = enum_width(n);
                if (1usize << w) != n {
                    out.push(index.bvult(BV::from_u64(n as u64, w)));
                }
            }
            Sym::Option { payload, .. } => payload.well_formed(out),
            Sym::Record { fields, .. } => {
                for f in fields {
                    f.well_formed(out);
                }
            }
            _ => {}
        }
    }

    /// Decodes this symbolic value under a Z3 model into a concrete [`Value`].
    ///
    /// Uses model completion, so unconstrained components decode to arbitrary
    /// (but valid) values.
    ///
    /// # Errors
    ///
    /// Returns [`SmtError::ModelDecode`] if Z3 yields a non-constant term.
    pub fn decode(&self, model: &z3::Model, ty: &Type) -> Result<Value, SmtError> {
        let fail = |what: &str| SmtError::ModelDecode(what.to_owned());
        Ok(match (self, ty) {
            (Sym::Bool(b), Type::Bool) => Value::Bool(
                model.eval(b, true).and_then(|v| v.as_bool()).ok_or_else(|| fail("bool"))?,
            ),
            (Sym::BV(bv), Type::BitVec(w)) => Value::bv(
                model.eval(bv, true).and_then(|v| v.as_u64()).ok_or_else(|| fail("bitvec"))?,
                *w,
            ),
            (Sym::Int(i), Type::Int) => Value::Int(
                model.eval(i, true).and_then(|v| v.as_i64()).ok_or_else(|| fail("int"))? as i128,
            ),
            (Sym::Enum { index, .. }, Type::Enum(def)) => {
                let raw =
                    model.eval(index, true).and_then(|v| v.as_u64()).ok_or_else(|| fail("enum"))?
                        as usize;
                let n = def.variants().len();
                Value::Enum { def: Arc::clone(def), index: raw.min(n - 1) }
            }
            (Sym::Option { is_some, payload }, Type::Option(p)) => {
                let present = model
                    .eval(is_some, true)
                    .and_then(|v| v.as_bool())
                    .ok_or_else(|| fail("option presence"))?;
                if present {
                    Value::some(payload.decode(model, p)?)
                } else {
                    Value::none((**p).clone())
                }
            }
            (Sym::Record { def, fields }, Type::Record(_)) => {
                let vals = def
                    .fields()
                    .iter()
                    .zip(fields)
                    .map(|((_, t), s)| s.decode(model, t))
                    .collect::<Result<Vec<_>, _>>()?;
                Value::Record { def: Arc::clone(def), fields: vals }
            }
            (Sym::Set { def, mask }, Type::Set(_)) => {
                let raw =
                    model.eval(mask, true).and_then(|v| v.as_u64()).ok_or_else(|| fail("set"))?;
                Value::Set { def: Arc::clone(def), mask: raw }
            }
            _ => return Err(fail("shape mismatch")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_width_is_minimal() {
        assert_eq!(enum_width(1), 1);
        assert_eq!(enum_width(2), 1);
        assert_eq!(enum_width(3), 2);
        assert_eq!(enum_width(4), 2);
        assert_eq!(enum_width(5), 3);
        assert_eq!(enum_width(256), 8);
    }

    #[test]
    fn set_width_nonzero() {
        assert_eq!(set_width(0), 1);
        assert_eq!(set_width(3), 3);
    }

    #[test]
    fn declare_matches_shape() {
        let ty = Type::option(Type::record("R", [("a", Type::Bool), ("b", Type::BitVec(8))]));
        let s = Sym::declare("x", &ty);
        match s {
            Sym::Option { payload, .. } => match *payload {
                Sym::Record { fields, .. } => assert_eq!(fields.len(), 2),
                other => panic!("expected record payload, got {other:?}"),
            },
            other => panic!("expected option, got {other:?}"),
        }
    }

    #[test]
    fn constant_roundtrip_via_solver() {
        use z3::{SatResult, Solver};
        let ty = Type::record("R", [("a", Type::Int), ("b", Type::Bool)]);
        let def = ty.record_def().unwrap();
        let v = Value::record(def, vec![Value::int(42), Value::Bool(true)]);
        let c = Sym::constant(&v).unwrap();
        let x = Sym::declare("x", &ty);
        let solver = Solver::new();
        solver.assert(x.eq(&c));
        assert_eq!(solver.check(), SatResult::Sat);
        let m = solver.get_model().unwrap();
        assert_eq!(x.decode(&m, &ty).unwrap(), v);
    }

    #[test]
    fn int_too_large_rejected() {
        let v = Value::Int(i128::from(i64::MAX) + 1);
        assert!(matches!(Sym::constant(&v), Err(SmtError::IntTooLarge(_))));
    }

    #[test]
    fn option_equality_ignores_absent_payload() {
        use z3::{SatResult, Solver};
        let ty = Type::option(Type::Int);
        let a = Sym::constant(&Value::none(Type::Int)).unwrap();
        // a None with a nonzero payload component should still equal None
        let weird = Sym::Option {
            is_some: Bool::from_bool(false),
            payload: Box::new(Sym::Int(Int::from_i64(99))),
        };
        let solver = Solver::new();
        solver.assert(a.eq(&weird).not());
        assert_eq!(solver.check(), SatResult::Unsat);
        let _ = ty;
    }

    #[test]
    fn well_formed_constrains_enums() {
        let ty = Type::enumeration("Origin", ["egp", "igp", "unknown"]);
        let s = Sym::declare("o", &ty);
        let mut constraints = Vec::new();
        s.well_formed(&mut constraints);
        assert_eq!(constraints.len(), 1);
        // power-of-two enums need no constraint
        let ty2 = Type::enumeration("Two", ["a", "b"]);
        let s2 = Sym::declare("t", &ty2);
        let mut c2 = Vec::new();
        s2.well_formed(&mut c2);
        assert!(c2.is_empty());
    }
}
