//! Fattree data center topologies (Al-Fares et al., SIGCOMM 2008).
//!
//! A `k`-fattree has `k` pods, each with `k/2` aggregation and `k/2` edge
//! (top-of-rack) switches, plus `(k/2)²` core switches: `1.25k²` nodes in
//! total, connected by `k³` directed edges. All links are bidirectional.
//!
//! The paper's benchmarks pick per-node witness times with a `dist` function
//! determined by a node's *role* relative to the destination edge node
//! (§6, "Witness times"); [`FatTree::dist`] implements those five cases.

use crate::graph::{NodeId, Topology};

/// The role of a fattree node, which (with its pod) determines its invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FatTreeRole {
    /// A core switch, connected to one aggregation switch in every pod.
    Core,
    /// An aggregation switch in the given pod.
    Aggregation {
        /// The pod index, `0..k`.
        pod: usize,
    },
    /// An edge (top-of-rack) switch in the given pod.
    Edge {
        /// The pod index, `0..k`.
        pod: usize,
    },
}

impl FatTreeRole {
    /// The pod, if this role is pod-local.
    pub fn pod(&self) -> Option<usize> {
        match self {
            FatTreeRole::Core => None,
            FatTreeRole::Aggregation { pod } | FatTreeRole::Edge { pod } => Some(*pod),
        }
    }
}

/// The symmetry class of a fattree node relative to a destination edge node:
/// the five `dist` classes of §6, with the destination split out from its
/// pod-mates. See [`FatTree::symmetry_class`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FatTreeClass {
    /// The destination edge node itself (`dist = 0`).
    Destination,
    /// Aggregation switches in the destination pod (`dist = 1`).
    AggSamePod,
    /// Edge switches in the destination pod, other than the destination
    /// (`dist = 2`).
    EdgeSamePod,
    /// Core switches (`dist = 2`).
    Core,
    /// Aggregation switches outside the destination pod (`dist = 3`).
    AggOtherPod,
    /// Edge switches outside the destination pod (`dist = 4`).
    EdgeOtherPod,
}

impl FatTreeClass {
    /// All classes, in increasing `dist` order.
    pub const ALL: [FatTreeClass; 6] = [
        FatTreeClass::Destination,
        FatTreeClass::AggSamePod,
        FatTreeClass::EdgeSamePod,
        FatTreeClass::Core,
        FatTreeClass::AggOtherPod,
        FatTreeClass::EdgeOtherPod,
    ];

    /// The paper's `dist` witness time of every member of this class.
    pub fn dist(&self) -> u64 {
        match self {
            FatTreeClass::Destination => 0,
            FatTreeClass::AggSamePod => 1,
            FatTreeClass::EdgeSamePod | FatTreeClass::Core => 2,
            FatTreeClass::AggOtherPod => 3,
            FatTreeClass::EdgeOtherPod => 4,
        }
    }
}

/// A generated `k`-fattree with role metadata.
///
/// # Example
///
/// ```
/// use timepiece_topology::{FatTree, FatTreeRole};
///
/// let ft = FatTree::new(4);
/// let dest = ft.edge_nodes().next().unwrap();
/// assert_eq!(ft.dist(dest, dest), 0);
/// assert!(ft.edge_nodes().all(|v| ft.dist(v, dest) <= 4));
/// ```
#[derive(Debug, Clone)]
pub struct FatTree {
    k: usize,
    topology: Topology,
    roles: Vec<FatTreeRole>,
}

impl FatTree {
    /// Generates a `k`-fattree.
    ///
    /// # Panics
    ///
    /// Panics unless `k` is even and at least 2.
    pub fn new(k: usize) -> FatTree {
        assert!(k >= 2 && k.is_multiple_of(2), "fattree requires even k >= 2");
        let half = k / 2;
        let mut topology = Topology::new();
        let mut roles = Vec::new();

        let cores: Vec<NodeId> = (0..half * half)
            .map(|i| {
                roles.push(FatTreeRole::Core);
                topology.add_node(format!("core-{i}"))
            })
            .collect();

        for pod in 0..k {
            let aggs: Vec<NodeId> = (0..half)
                .map(|j| {
                    roles.push(FatTreeRole::Aggregation { pod });
                    topology.add_node(format!("agg-{pod}-{j}"))
                })
                .collect();
            let edges: Vec<NodeId> = (0..half)
                .map(|j| {
                    roles.push(FatTreeRole::Edge { pod });
                    topology.add_node(format!("edge-{pod}-{j}"))
                })
                .collect();
            // every edge switch links to every aggregation switch in its pod
            for &e in &edges {
                for &a in &aggs {
                    topology.add_undirected(e, a);
                }
            }
            // aggregation switch j links to cores [j·k/2, (j+1)·k/2)
            for (j, &a) in aggs.iter().enumerate() {
                for c in 0..half {
                    topology.add_undirected(a, cores[j * half + c]);
                }
            }
        }

        FatTree { k, topology, roles }
    }

    /// The pod count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The role of a node.
    pub fn role(&self, v: NodeId) -> FatTreeRole {
        self.roles[v.index()]
    }

    /// Iterates over core nodes.
    pub fn core_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.topology.nodes().filter(|&v| matches!(self.role(v), FatTreeRole::Core))
    }

    /// Iterates over aggregation nodes.
    pub fn aggregation_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.topology.nodes().filter(|&v| matches!(self.role(v), FatTreeRole::Aggregation { .. }))
    }

    /// Iterates over edge (top-of-rack) nodes.
    pub fn edge_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.topology.nodes().filter(|&v| matches!(self.role(v), FatTreeRole::Edge { .. }))
    }

    /// The *wiring group* of a node: aggregation switch `j` of any pod
    /// connects exactly the cores `[j·k/2, (j+1)·k/2)`, so those cores and
    /// every pod's `j`-th aggregation switch form one vertical "plane" of
    /// the fattree. Returns that plane index for aggregation and core
    /// switches, and the within-pod index for edge switches.
    ///
    /// The MED and link-failure scenarios key per-plane policies and
    /// witness times off this index.
    pub fn group(&self, v: NodeId) -> usize {
        let half = self.k / 2;
        match self.role(v) {
            // cores were added first, in plane-major order
            FatTreeRole::Core => v.index() / half,
            // within a pod, the k/2 aggregation switches precede the k/2
            // edge switches; both blocks are in plane order
            FatTreeRole::Aggregation { pod } => v.index() - (half * half) - pod * self.k,
            FatTreeRole::Edge { pod } => v.index() - (half * half) - pod * self.k - half,
        }
    }

    /// Is `u → v` a *down* edge (core→agg or agg→edge)? Used by the
    /// valley-freedom policy, which tags routes travelling down.
    pub fn is_down_edge(&self, u: NodeId, v: NodeId) -> bool {
        matches!(
            (self.role(u), self.role(v)),
            (FatTreeRole::Core, FatTreeRole::Aggregation { .. })
                | (FatTreeRole::Aggregation { .. }, FatTreeRole::Edge { .. })
        )
    }

    /// The paper's `dist(v)` witness-time function for a destination edge
    /// node `dest` (§6): 0 at the destination; 1 for aggregation switches in
    /// the destination pod; 2 for cores and for edge switches in the
    /// destination pod; 3 for aggregation switches elsewhere; 4 for edge
    /// switches elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is not an edge node.
    pub fn dist(&self, v: NodeId, dest: NodeId) -> u64 {
        let dest_pod = match self.role(dest) {
            FatTreeRole::Edge { pod } => pod,
            other => panic!("destination must be an edge node, got {other:?}"),
        };
        match self.role(v) {
            _ if v == dest => 0,
            FatTreeRole::Aggregation { pod } if pod == dest_pod => 1,
            FatTreeRole::Core => 2,
            FatTreeRole::Edge { pod } if pod == dest_pod => 2,
            FatTreeRole::Aggregation { .. } => 3,
            FatTreeRole::Edge { .. } => 4,
        }
    }

    /// The symmetry class of a node relative to a destination edge node: all
    /// members of a class are related by an automorphism of the fattree that
    /// fixes the destination, so they share witness times and invariant
    /// shapes (§6, "Witness times"). One inferred interface template per
    /// class therefore covers the whole fattree, independent of `k`.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is not an edge node.
    pub fn symmetry_class(&self, v: NodeId, dest: NodeId) -> FatTreeClass {
        let dest_pod = match self.role(dest) {
            FatTreeRole::Edge { pod } => pod,
            other => panic!("destination must be an edge node, got {other:?}"),
        };
        match self.role(v) {
            _ if v == dest => FatTreeClass::Destination,
            FatTreeRole::Aggregation { pod } if pod == dest_pod => FatTreeClass::AggSamePod,
            FatTreeRole::Edge { pod } if pod == dest_pod => FatTreeClass::EdgeSamePod,
            FatTreeRole::Core => FatTreeClass::Core,
            FatTreeRole::Aggregation { .. } => FatTreeClass::AggOtherPod,
            FatTreeRole::Edge { .. } => FatTreeClass::EdgeOtherPod,
        }
    }

    /// Nodes *adjacent* to the destination in the paper's Vf sense: the
    /// destination itself and the aggregation switches of its pod. These
    /// carry routes upward before any core has one.
    pub fn is_adjacent(&self, v: NodeId, dest: NodeId) -> bool {
        let dest_pod = match self.role(dest) {
            FatTreeRole::Edge { pod } => pod,
            other => panic!("destination must be an edge node, got {other:?}"),
        };
        v == dest || matches!(self.role(v), FatTreeRole::Aggregation { pod } if pod == dest_pod)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formula() {
        for k in [2usize, 4, 8, 12] {
            let ft = FatTree::new(k);
            assert_eq!(ft.topology().node_count(), 5 * k * k / 4, "nodes at k={k}");
            assert_eq!(ft.topology().edge_count(), k * k * k, "edges at k={k}");
        }
    }

    #[test]
    fn role_partition() {
        let ft = FatTree::new(4);
        assert_eq!(ft.core_nodes().count(), 4);
        assert_eq!(ft.aggregation_nodes().count(), 8);
        assert_eq!(ft.edge_nodes().count(), 8);
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn odd_k_rejected() {
        FatTree::new(3);
    }

    #[test]
    fn diameter_is_four() {
        for k in [4usize, 8] {
            let ft = FatTree::new(k);
            assert_eq!(ft.topology().diameter(), Some(4), "k={k}");
        }
    }

    #[test]
    fn dist_matches_bfs() {
        let ft = FatTree::new(8);
        for dest in ft.edge_nodes() {
            let bfs = ft.topology().bfs_distances(dest);
            for v in ft.topology().nodes() {
                assert_eq!(
                    ft.dist(v, dest),
                    u64::from(bfs[v.index()].expect("fattree is connected")),
                    "dist mismatch at {} relative to {}",
                    ft.topology().name(v),
                    ft.topology().name(dest),
                );
            }
        }
    }

    #[test]
    fn down_edges_point_down() {
        let ft = FatTree::new(4);
        let mut down = 0;
        for (u, v) in ft.topology().edges() {
            if ft.is_down_edge(u, v) {
                down += 1;
                assert!(!ft.is_down_edge(v, u), "reverse of a down edge is up");
            }
        }
        // exactly half of all directed edges point down
        assert_eq!(down, ft.topology().edge_count() / 2);
    }

    #[test]
    fn adjacency_is_dest_pod_aggs_plus_dest() {
        let ft = FatTree::new(4);
        let dest = ft.edge_nodes().next().unwrap();
        let adj: Vec<_> = ft.topology().nodes().filter(|&v| ft.is_adjacent(v, dest)).collect();
        // dest + k/2 aggregation switches
        assert_eq!(adj.len(), 1 + 2);
        for v in adj {
            if v != dest {
                assert!(matches!(ft.role(v), FatTreeRole::Aggregation { pod: 0 }));
            }
        }
    }

    #[test]
    fn symmetry_classes_refine_dist() {
        let ft = FatTree::new(8);
        for dest in ft.edge_nodes() {
            for v in ft.topology().nodes() {
                let class = ft.symmetry_class(v, dest);
                assert_eq!(
                    class.dist(),
                    ft.dist(v, dest),
                    "class dist at {}",
                    ft.topology().name(v)
                );
            }
        }
    }

    #[test]
    fn symmetry_class_counts() {
        let k = 6;
        let ft = FatTree::new(k);
        let dest = ft.edge_nodes().next().unwrap();
        let count = |c: FatTreeClass| {
            ft.topology().nodes().filter(|&v| ft.symmetry_class(v, dest) == c).count()
        };
        assert_eq!(count(FatTreeClass::Destination), 1);
        assert_eq!(count(FatTreeClass::AggSamePod), k / 2);
        assert_eq!(count(FatTreeClass::EdgeSamePod), k / 2 - 1);
        assert_eq!(count(FatTreeClass::Core), k * k / 4);
        assert_eq!(count(FatTreeClass::AggOtherPod), (k - 1) * k / 2);
        assert_eq!(count(FatTreeClass::EdgeOtherPod), (k - 1) * k / 2);
        // the six classes partition the node set
        let total: usize = FatTreeClass::ALL.iter().map(|&c| count(c)).sum();
        assert_eq!(total, ft.topology().node_count());
    }

    #[test]
    fn groups_match_names_and_wiring() {
        for k in [4usize, 6] {
            let ft = FatTree::new(k);
            let half = k / 2;
            for v in ft.topology().nodes() {
                let name = ft.topology().name(v);
                let g = ft.group(v);
                match ft.role(v) {
                    FatTreeRole::Core => {
                        let i: usize = name.strip_prefix("core-").unwrap().parse().unwrap();
                        assert_eq!(g, i / half, "{name}");
                    }
                    FatTreeRole::Aggregation { .. } | FatTreeRole::Edge { .. } => {
                        let j: usize = name.rsplit('-').next().unwrap().parse().unwrap();
                        assert_eq!(g, j, "{name}");
                    }
                }
            }
            // wiring: aggregation switch j touches exactly the group-j cores
            for a in ft.aggregation_nodes() {
                for &c in ft.topology().succs(a) {
                    if matches!(ft.role(c), FatTreeRole::Core) {
                        assert_eq!(ft.group(c), ft.group(a));
                    }
                }
            }
        }
    }

    #[test]
    fn role_pod_accessor() {
        assert_eq!(FatTreeRole::Core.pod(), None);
        assert_eq!(FatTreeRole::Edge { pod: 3 }.pod(), Some(3));
        assert_eq!(FatTreeRole::Aggregation { pod: 1 }.pod(), Some(1));
    }
}
