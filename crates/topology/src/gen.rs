//! Small topology generators used by tests, examples and property tests.

use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;

use crate::graph::{NodeId, Topology};

/// A directed path `v0 → v1 → … → v(n-1)`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn path(n: usize) -> Topology {
    assert!(n > 0, "path requires at least one node");
    let mut g = Topology::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("v{i}"))).collect();
    for w in nodes.windows(2) {
        g.add_edge(w[0], w[1]);
    }
    g
}

/// An undirected path (both edge directions).
pub fn undirected_path(n: usize) -> Topology {
    assert!(n > 0, "path requires at least one node");
    let mut g = Topology::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("v{i}"))).collect();
    for w in nodes.windows(2) {
        g.add_undirected(w[0], w[1]);
    }
    g
}

/// A directed ring `v0 → v1 → … → v(n-1) → v0`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn ring(n: usize) -> Topology {
    assert!(n >= 2, "ring requires at least two nodes");
    let mut g = Topology::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("v{i}"))).collect();
    for i in 0..n {
        g.add_edge(nodes[i], nodes[(i + 1) % n]);
    }
    g
}

/// A star: a hub bidirectionally linked to `n` leaves.
pub fn star(leaves: usize) -> Topology {
    let mut g = Topology::new();
    let hub = g.add_node("hub");
    for i in 0..leaves {
        let leaf = g.add_node(format!("leaf{i}"));
        g.add_undirected(hub, leaf);
    }
    g
}

/// A complete graph on `n` nodes (all ordered pairs).
pub fn complete(n: usize) -> Topology {
    let mut g = Topology::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("v{i}"))).collect();
    for &u in &nodes {
        for &v in &nodes {
            if u != v {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// An undirected `w × h` grid.
pub fn grid(w: usize, h: usize) -> Topology {
    assert!(w > 0 && h > 0, "grid requires positive dimensions");
    let mut g = Topology::new();
    let at = |x: usize, y: usize| NodeId::new((y * w + x) as u32);
    for y in 0..h {
        for x in 0..w {
            g.add_node(format!("v{x}-{y}"));
        }
    }
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                g.add_undirected(at(x, y), at(x + 1, y));
            }
            if y + 1 < h {
                g.add_undirected(at(x, y), at(x, y + 1));
            }
        }
    }
    g
}

/// A random undirected G(n, p) graph, made connected by threading a path
/// through all nodes first.
pub fn random_connected(n: usize, p: f64, seed: u64) -> Topology {
    assert!(n > 0, "graph requires at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = undirected_path(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p.clamp(0.0, 1.0)) {
                let (u, v) = (NodeId::new(u as u32), NodeId::new(v as u32));
                if !g.succs(u).contains(&v) {
                    g.add_undirected(u, v);
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.diameter(), Some(3));
    }

    #[test]
    fn undirected_path_shape() {
        let g = undirected_path(4);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.diameter(), Some(3));
    }

    #[test]
    fn ring_shape() {
        let g = ring(5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.diameter(), Some(4));
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.diameter(), Some(2));
    }

    #[test]
    fn complete_shape() {
        let g = complete(4);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.diameter(), Some(1));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 2);
        assert_eq!(g.node_count(), 6);
        // 3x2 grid: 2*2 horizontal + 3*1 vertical undirected links = 7 links
        assert_eq!(g.edge_count(), 14);
        assert_eq!(g.diameter(), Some(3));
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        let g1 = random_connected(20, 0.2, 9);
        let g2 = random_connected(20, 0.2, 9);
        assert_eq!(g1.edge_count(), g2.edge_count());
        let dist = g1.bfs_distances(NodeId::new(0));
        assert!(dist.iter().all(Option::is_some));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_path_rejected() {
        path(0);
    }
}
