//! A compact directed graph with named nodes.

use std::collections::HashMap;
use std::fmt;

/// An index identifying a node in a [`Topology`].
///
/// Node ids are dense: a topology with `n` nodes uses ids `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub fn new(index: u32) -> NodeId {
        NodeId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(i: u32) -> NodeId {
        NodeId(i)
    }
}

/// A directed graph with string-named nodes and deduplicated edges.
///
/// The network topology `G = (V, E)` of the paper's routing model: routes flow
/// along directed edges, so a bidirectional link is two edges.
///
/// # Example
///
/// ```
/// use timepiece_topology::Topology;
///
/// let mut g = Topology::new();
/// let a = g.add_node("a");
/// let b = g.add_node("b");
/// g.add_edge(a, b);
/// assert_eq!(g.preds(b), &[a]);
/// assert_eq!(g.succs(a), &[b]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Topology {
    names: Vec<String>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
    by_name: HashMap<String, NodeId>,
    edge_count: usize,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a node with a unique name and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a node with this name already exists.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        assert!(!self.by_name.contains_key(&name), "duplicate node name {name:?}");
        let id = NodeId(self.names.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Adds the directed edge `u → v` (idempotent).
    ///
    /// Returns `true` if the edge is new.
    ///
    /// # Panics
    ///
    /// Panics on self loops, which have no meaning in the routing model.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert_ne!(u, v, "self loops are not allowed");
        if self.succs[u.index()].contains(&v) {
            return false;
        }
        self.succs[u.index()].push(v);
        self.preds[v.index()].push(u);
        self.edge_count += 1;
        true
    }

    /// Adds both directions of a link.
    pub fn add_undirected(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// Iterates over all directed edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| self.succs(u).iter().map(move |&v| (u, v)))
    }

    /// The name of a node.
    pub fn name(&self, v: NodeId) -> &str {
        &self.names[v.index()]
    }

    /// Looks up a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// The node's *class stem*: its name up to the first `-`.
    ///
    /// Every generator in this workspace names nodes `<class>-<position>`
    /// (`core-3`, `agg-0-1`, `edge-2-0`, `internal-5`, `peer-17`, …), so the
    /// stem is a coarse symmetry class whose members share policy shape and
    /// verification cost. Because names are part of the deterministic
    /// topology construction, the stem is a **stable node→shard key**: a
    /// coordinator and its worker subprocesses can partition by it (cf.
    /// `ShardPlan::by_class` in `timepiece-sched`) without exchanging node
    /// lists.
    pub fn node_class(&self, v: NodeId) -> &str {
        let name = self.name(v);
        name.split_once('-').map_or(name, |(stem, _)| stem)
    }

    /// In-neighbors of `v` (the `preds(v)` of the paper).
    pub fn preds(&self, v: NodeId) -> &[NodeId] {
        &self.preds[v.index()]
    }

    /// Out-neighbors of `v`.
    pub fn succs(&self, v: NodeId) -> &[NodeId] {
        &self.succs[v.index()]
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.preds[v.index()].len()
    }

    /// BFS distances (in hops, following edge direction) from `from` to every
    /// node; `None` for unreachable nodes.
    pub fn bfs_distances(&self, from: NodeId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        dist[from.index()] = Some(0);
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].expect("queued nodes have distances");
            for &v in self.succs(u) {
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// The graph diameter (longest finite shortest-path distance), or `None`
    /// for an empty graph.
    pub fn diameter(&self) -> Option<u32> {
        self.nodes().flat_map(|v| self.bfs_distances(v).into_iter().flatten()).max()
    }

    /// Renders the topology in Graphviz DOT format.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph G {\n");
        for v in self.nodes() {
            writeln!(out, "  {} [label=\"{}\"];", v, self.name(v)).expect("writing to string");
        }
        for (u, v) in self.edges() {
            writeln!(out, "  {u} -> {v};").expect("writing to string");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Topology, [NodeId; 4]) {
        // a -> b, a -> c, b -> d, c -> d
        let mut g = Topology::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        (g, [a, b, c, d])
    }

    #[test]
    fn node_class_is_the_name_stem() {
        let mut g = Topology::new();
        let core = g.add_node("core-3");
        let agg = g.add_node("agg-0-1");
        let plain = g.add_node("hijacker");
        assert_eq!(g.node_class(core), "core");
        assert_eq!(g.node_class(agg), "agg");
        assert_eq!(g.node_class(plain), "hijacker");
    }

    #[test]
    fn counts_and_lookup() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.node_by_name("c"), Some(c));
        assert_eq!(g.node_by_name("zzz"), None);
        assert_eq!(g.name(a), "a");
        assert_eq!(g.preds(d), &[b, c]);
        assert_eq!(g.succs(a), &[b, c]);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.in_degree(a), 0);
    }

    #[test]
    fn edges_are_deduplicated() {
        let mut g = Topology::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        assert!(g.add_edge(a, b));
        assert!(!g.add_edge(a, b));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loops_rejected() {
        let mut g = Topology::new();
        let a = g.add_node("a");
        g.add_edge(a, a);
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_rejected() {
        let mut g = Topology::new();
        g.add_node("a");
        g.add_node("a");
    }

    #[test]
    fn bfs_follows_direction() {
        let (g, [a, _, _, d]) = diamond();
        let dist = g.bfs_distances(a);
        assert_eq!(dist[d.index()], Some(2));
        // edges are directed: nothing reaches a
        let back = g.bfs_distances(d);
        assert_eq!(back[a.index()], None);
    }

    #[test]
    fn diameter_of_diamond() {
        let (g, _) = diamond();
        assert_eq!(g.diameter(), Some(2));
        assert_eq!(Topology::new().diameter(), None);
    }

    #[test]
    fn undirected_adds_both() {
        let mut g = Topology::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_undirected(a, b);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.preds(a), &[b]);
    }

    #[test]
    fn edges_iterator_matches_count() {
        let (g, _) = diamond();
        assert_eq!(g.edges().count(), g.edge_count());
    }

    #[test]
    fn dot_mentions_all_nodes() {
        let (g, _) = diamond();
        let dot = g.to_dot();
        for v in g.nodes() {
            assert!(dot.contains(g.name(v)));
        }
        assert!(dot.contains("->"));
    }
}
