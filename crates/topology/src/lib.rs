//! Network topology substrate for the Timepiece reproduction.
//!
//! Provides a small directed-graph type ([`Topology`]) plus the generators the
//! paper's evaluation needs:
//!
//! * [`fattree::FatTree`] — the k-pod data center topologies of §6 (a
//!   k-fattree has 1.25k² nodes and k³ directed edges), with node roles,
//!   pods and the `dist` function used to pick witness times;
//! * [`wan::Wan`] — a synthetic Internet2-style wide-area network (10
//!   internal backbone routers, 253 external peers);
//! * [`gen`] — paths, rings, stars, grids, complete and random graphs used
//!   throughout the test suite.
//!
//! # Example
//!
//! ```
//! use timepiece_topology::fattree::FatTree;
//!
//! let ft = FatTree::new(4);
//! assert_eq!(ft.topology().node_count(), 20);      // 1.25 · 4²
//! assert_eq!(ft.topology().edge_count(), 64);      // 4³ directed edges
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fattree;
pub mod gen;
pub mod graph;
pub mod wan;

pub use fattree::{FatTree, FatTreeClass, FatTreeRole};
pub use graph::{NodeId, Topology};
pub use wan::{PeerClass, Wan};
