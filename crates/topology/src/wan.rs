//! A synthetic Internet2-style wide-area network.
//!
//! The paper evaluates Timepiece on the Internet2 backbone: 10 internal
//! routers running ~1,552 Junos policy terms, peering with 253 external
//! neighbors. Those configuration files are not redistributable, so this
//! module generates a network with the *published shape*: the Abilene
//! backbone topology for the internal mesh, 253 external peers attached
//! round-robin, and a peer classification (commercial / academic / settlement-
//! free) that the synthetic policies in `timepiece-nets` use to vary their
//! import/export terms, mirroring how Internet2 tags customer priorities.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::SeedableRng;

use crate::graph::{NodeId, Topology};

/// The ten Abilene/Internet2 backbone router sites.
const BACKBONE: [&str; 10] =
    ["ATLA", "CHIC", "DENV", "HSTN", "IPLS", "KSCY", "LOSA", "NYCM", "SNVA", "WASH"];

/// The Abilene backbone links (bidirectional), by index into [`BACKBONE`].
const BACKBONE_LINKS: [(usize, usize); 13] = [
    (0, 3), // ATLA–HSTN
    (0, 4), // ATLA–IPLS
    (0, 9), // ATLA–WASH
    (1, 4), // CHIC–IPLS
    (1, 7), // CHIC–NYCM
    (1, 9), // CHIC–WASH
    (2, 5), // DENV–KSCY
    (2, 8), // DENV–SNVA
    (2, 6), // DENV–LOSA
    (3, 5), // HSTN–KSCY
    (4, 5), // IPLS–KSCY
    (6, 8), // LOSA–SNVA
    (7, 9), // NYCM–WASH
];

/// The class of an external peer, which determines its synthetic policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeerClass {
    /// A paying commercial customer (routes preferred, tagged `commercial`).
    Commercial,
    /// An academic member network (tagged `academic`).
    Academic,
    /// A settlement-free peer (lowest preference, `peer` tag).
    SettlementFree,
}

impl PeerClass {
    /// All classes, in generation order.
    pub const ALL: [PeerClass; 3] =
        [PeerClass::Commercial, PeerClass::Academic, PeerClass::SettlementFree];
}

/// A generated wide-area network: internal backbone + classified peers.
///
/// # Example
///
/// ```
/// use timepiece_topology::Wan;
///
/// let wan = Wan::synthetic_internet2(7);
/// assert_eq!(wan.internal_nodes().count(), 10);
/// assert_eq!(wan.external_nodes().count(), 253);
/// ```
#[derive(Debug, Clone)]
pub struct Wan {
    topology: Topology,
    internal: usize,
    peer_classes: Vec<PeerClass>,
}

impl Wan {
    /// Generates the synthetic Internet2: 10 backbone routers, 253 peers.
    ///
    /// `seed` controls only how peers are spread over backbone routers; the
    /// backbone itself is fixed.
    pub fn synthetic_internet2(seed: u64) -> Wan {
        Wan::synthetic(seed, 253)
    }

    /// Generates the backbone with a chosen number of external peers.
    pub fn synthetic(seed: u64, peers: usize) -> Wan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut topology = Topology::new();
        let backbone: Vec<NodeId> = BACKBONE.iter().map(|n| topology.add_node(*n)).collect();
        for (a, b) in BACKBONE_LINKS {
            topology.add_undirected(backbone[a], backbone[b]);
        }
        let mut peer_classes = Vec::with_capacity(peers);
        for i in 0..peers {
            let class = PeerClass::ALL[i % PeerClass::ALL.len()];
            let peer = topology.add_node(format!("peer-{i}"));
            let attach = *backbone.choose(&mut rng).expect("backbone is nonempty");
            topology.add_undirected(peer, attach);
            peer_classes.push(class);
        }
        Wan { topology, internal: BACKBONE.len(), peer_classes }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Is this node part of the internal backbone?
    pub fn is_internal(&self, v: NodeId) -> bool {
        v.index() < self.internal
    }

    /// Iterates over internal backbone nodes.
    pub fn internal_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.topology.nodes().filter(|&v| self.is_internal(v))
    }

    /// Iterates over external peers.
    pub fn external_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.topology.nodes().filter(|&v| !self.is_internal(v))
    }

    /// The class of an external peer.
    ///
    /// # Panics
    ///
    /// Panics if `v` is internal.
    pub fn peer_class(&self, v: NodeId) -> PeerClass {
        assert!(!self.is_internal(v), "peer_class of internal node");
        self.peer_classes[v.index() - self.internal]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let wan = Wan::synthetic_internet2(0);
        assert_eq!(wan.topology().node_count(), 263);
        assert_eq!(wan.internal_nodes().count(), 10);
        assert_eq!(wan.external_nodes().count(), 253);
    }

    #[test]
    fn backbone_is_connected() {
        let wan = Wan::synthetic_internet2(0);
        let first = wan.internal_nodes().next().unwrap();
        let dist = wan.topology().bfs_distances(first);
        for v in wan.internal_nodes() {
            assert!(dist[v.index()].is_some(), "{} unreachable", wan.topology().name(v));
        }
    }

    #[test]
    fn every_peer_attaches_to_backbone() {
        let wan = Wan::synthetic_internet2(42);
        for p in wan.external_nodes() {
            let preds = wan.topology().preds(p);
            assert_eq!(preds.len(), 1);
            assert!(wan.is_internal(preds[0]));
        }
    }

    #[test]
    fn peer_classes_cycle() {
        let wan = Wan::synthetic(0, 6);
        let classes: Vec<_> = wan.external_nodes().map(|v| wan.peer_class(v)).collect();
        assert_eq!(
            classes,
            vec![
                PeerClass::Commercial,
                PeerClass::Academic,
                PeerClass::SettlementFree,
                PeerClass::Commercial,
                PeerClass::Academic,
                PeerClass::SettlementFree,
            ]
        );
    }

    #[test]
    fn seeds_change_attachment_not_shape() {
        let a = Wan::synthetic_internet2(1);
        let b = Wan::synthetic_internet2(2);
        assert_eq!(a.topology().node_count(), b.topology().node_count());
        // with 253 peers over 10 sites, two seeds almost surely differ somewhere
        let attach = |w: &Wan| -> Vec<NodeId> {
            w.external_nodes().map(|p| w.topology().preds(p)[0]).collect()
        };
        assert_ne!(attach(&a), attach(&b));
    }

    #[test]
    #[should_panic(expected = "peer_class of internal")]
    fn peer_class_rejects_internal() {
        let wan = Wan::synthetic_internet2(0);
        let internal = wan.internal_nodes().next().unwrap();
        wan.peer_class(internal);
    }
}
