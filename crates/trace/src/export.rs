//! Trace exporters.
//!
//! Two output shapes, both through the crate's own [`Json`] codec:
//!
//! * [`chrome_trace`] — the Chrome trace-event format, loadable in Perfetto
//!   or `chrome://tracing`. One track per worker thread (`thread_name`
//!   metadata events), one process group per shard (`process_name` events),
//!   complete spans as `ph: "X"` and instants as `ph: "i"`.
//! * [`trace_to_json`] / [`trace_from_json`] — a lossless round-trip of a
//!   [`Trace`], used by shard workers to ship their span buffers home inside
//!   a `ShardReport`.
//!
//! [`metrics_json`] renders the metrics registry snapshot; `repro` attaches
//! it to the Chrome document under `otherData`.

use crate::json::{Json, JsonError};
use crate::metrics::{self, MetricValue};
use crate::span::{Phase, SpanKind, SpanRecord, ThreadInfo, Trace};

/// Renders a trace as a Chrome trace-event document
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
pub fn chrome_trace(trace: &Trace) -> Json {
    let mut events = Vec::new();
    let mut name_meta = |pid: u32, tid: Option<u64>, kind: &str, name: &str| {
        let mut pairs = vec![
            ("name".to_owned(), Json::str(kind)),
            ("ph".to_owned(), Json::str("M")),
            ("pid".to_owned(), Json::from(pid as usize)),
        ];
        if let Some(tid) = tid {
            pairs.push(("tid".to_owned(), Json::from(tid as usize)));
        }
        pairs.push(("args".to_owned(), Json::obj([("name", Json::str(name))])));
        events.push(Json::Obj(pairs));
    };
    name_meta(0, None, "process_name", "timepiece");
    for (pid, name) in &trace.processes {
        name_meta(*pid, None, "process_name", name);
    }
    for thread in &trace.threads {
        name_meta(thread.pid, Some(thread.tid), "thread_name", &thread.label);
    }
    for span in &trace.spans {
        events.push(span_event(span));
    }
    Json::obj([("traceEvents", Json::Arr(events)), ("displayTimeUnit", Json::str("ms"))])
}

fn span_event(span: &SpanRecord) -> Json {
    // Chrome timestamps are microseconds; fractional values keep the
    // nanosecond resolution
    let ts = span.start_ns as f64 / 1_000.0;
    let mut pairs = vec![
        ("name".to_owned(), Json::str(span.name.as_str())),
        ("cat".to_owned(), Json::str(span.phase.name())),
    ];
    match span.kind {
        SpanKind::Complete => {
            pairs.push(("ph".to_owned(), Json::str("X")));
            pairs.push(("ts".to_owned(), Json::Num(ts)));
            pairs.push(("dur".to_owned(), Json::Num(span.dur_ns as f64 / 1_000.0)));
        }
        SpanKind::Instant => {
            pairs.push(("ph".to_owned(), Json::str("i")));
            pairs.push(("s".to_owned(), Json::str("t")));
            pairs.push(("ts".to_owned(), Json::Num(ts)));
        }
    }
    pairs.push(("pid".to_owned(), Json::from(span.pid as usize)));
    pairs.push(("tid".to_owned(), Json::from(span.tid as usize)));
    let mut args: Vec<(String, Json)> =
        span.args.iter().map(|(k, v)| (k.clone(), Json::str(v.as_str()))).collect();
    args.push(("span_id".to_owned(), Json::from(span.id as usize)));
    if span.parent != 0 {
        args.push(("parent_id".to_owned(), Json::from(span.parent as usize)));
    }
    pairs.push(("args".to_owned(), Json::Obj(args)));
    Json::Obj(pairs)
}

/// Serializes a trace losslessly (the shard-report wire form).
pub fn trace_to_json(trace: &Trace) -> Json {
    Json::obj([
        (
            "spans",
            Json::arr(trace.spans.iter().map(|s| {
                Json::obj([
                    ("id", Json::from(s.id as usize)),
                    ("parent", Json::from(s.parent as usize)),
                    (
                        "kind",
                        Json::str(match s.kind {
                            SpanKind::Complete => "X",
                            SpanKind::Instant => "i",
                        }),
                    ),
                    ("phase", Json::str(s.phase.name())),
                    ("name", Json::str(s.name.as_str())),
                    ("start", Json::from(s.start_ns as usize)),
                    ("dur", Json::from(s.dur_ns as usize)),
                    ("pid", Json::from(s.pid as usize)),
                    ("tid", Json::from(s.tid as usize)),
                    (
                        "args",
                        Json::Obj(
                            s.args
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::str(v.as_str())))
                                .collect(),
                        ),
                    ),
                ])
            })),
        ),
        (
            "threads",
            Json::arr(trace.threads.iter().map(|t| {
                Json::obj([
                    ("pid", Json::from(t.pid as usize)),
                    ("tid", Json::from(t.tid as usize)),
                    ("label", Json::str(t.label.as_str())),
                ])
            })),
        ),
        (
            "processes",
            Json::arr(trace.processes.iter().map(|(pid, name)| {
                Json::arr([Json::from(*pid as usize), Json::str(name.as_str())])
            })),
        ),
    ])
}

fn field_err(what: &str) -> JsonError {
    JsonError { message: format!("trace document: {what}"), offset: 0 }
}

fn need_usize(value: &Json, field: &str) -> Result<usize, JsonError> {
    value
        .get(field)
        .and_then(Json::as_usize)
        .ok_or_else(|| field_err(&format!("missing numeric field {field:?}")))
}

fn need_str<'j>(value: &'j Json, field: &str) -> Result<&'j str, JsonError> {
    value
        .get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| field_err(&format!("missing string field {field:?}")))
}

/// Deserializes a trace produced by [`trace_to_json`].
///
/// # Errors
///
/// Returns [`JsonError`] if required fields are missing or ill-typed.
pub fn trace_from_json(value: &Json) -> Result<Trace, JsonError> {
    let mut trace = Trace::default();
    let spans = value.get("spans").and_then(Json::as_arr).ok_or_else(|| field_err("no spans"))?;
    for s in spans {
        let kind = match need_str(s, "kind")? {
            "X" => SpanKind::Complete,
            "i" => SpanKind::Instant,
            other => return Err(field_err(&format!("unknown span kind {other:?}"))),
        };
        let phase_name = need_str(s, "phase")?;
        let phase = Phase::parse(phase_name)
            .ok_or_else(|| field_err(&format!("unknown phase {phase_name:?}")))?;
        let args = match s.get("args") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    Ok((
                        k.clone(),
                        v.as_str().ok_or_else(|| field_err("non-string span arg"))?.to_owned(),
                    ))
                })
                .collect::<Result<Vec<_>, JsonError>>()?,
            _ => Vec::new(),
        };
        trace.spans.push(SpanRecord {
            id: need_usize(s, "id")? as u64,
            parent: need_usize(s, "parent")? as u64,
            kind,
            phase,
            name: need_str(s, "name")?.to_owned(),
            start_ns: need_usize(s, "start")? as u64,
            dur_ns: need_usize(s, "dur")? as u64,
            pid: need_usize(s, "pid")? as u32,
            tid: need_usize(s, "tid")? as u64,
            args,
        });
    }
    if let Some(threads) = value.get("threads").and_then(Json::as_arr) {
        for t in threads {
            trace.threads.push(ThreadInfo {
                pid: need_usize(t, "pid")? as u32,
                tid: need_usize(t, "tid")? as u64,
                label: need_str(t, "label")?.to_owned(),
            });
        }
    }
    if let Some(processes) = value.get("processes").and_then(Json::as_arr) {
        for p in processes {
            let pair = p.as_arr().ok_or_else(|| field_err("process entry not a pair"))?;
            match pair {
                [pid, name] => trace.processes.push((
                    pid.as_usize().ok_or_else(|| field_err("process pid"))? as u32,
                    name.as_str().ok_or_else(|| field_err("process name"))?.to_owned(),
                )),
                _ => return Err(field_err("process entry not a pair")),
            }
        }
    }
    Ok(trace)
}

/// Renders the metrics registry snapshot as a flat JSON object: counters as
/// numbers, histograms as `{count, sum, p50, p99}` summaries.
pub fn metrics_json() -> Json {
    Json::Obj(
        metrics::snapshot()
            .into_iter()
            .map(|(name, value)| {
                let rendered = match value {
                    MetricValue::Counter(n) => Json::from(n as usize),
                    MetricValue::Histogram { count, sum, p50, p99 } => Json::obj([
                        ("count", Json::from(count as usize)),
                        ("sum", Json::from(sum as usize)),
                        ("p50", Json::from(p50 as usize)),
                        ("p99", Json::from(p99 as usize)),
                    ]),
                };
                (name, rendered)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: 0,
                    kind: SpanKind::Complete,
                    phase: Phase::Node,
                    name: "node \"edge-0\"".to_owned(),
                    start_ns: 1_000,
                    dur_ns: 9_000,
                    pid: 0,
                    tid: 1,
                    args: vec![("class".to_owned(), "edge".to_owned())],
                },
                SpanRecord {
                    id: 2,
                    parent: 1,
                    kind: SpanKind::Instant,
                    phase: Phase::Other,
                    name: "cancel".to_owned(),
                    start_ns: 2_500,
                    dur_ns: 0,
                    pid: 3,
                    tid: 7,
                    args: vec![],
                },
            ],
            threads: vec![ThreadInfo { pid: 0, tid: 1, label: "worker0".to_owned() }],
            processes: vec![(3, "shard1".to_owned())],
        }
    }

    #[test]
    fn trace_roundtrips_through_json() {
        let trace = sample_trace();
        let text = trace_to_json(&trace).to_string();
        let back = trace_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn chrome_document_has_events_and_metadata() {
        let doc = chrome_trace(&sample_trace());
        let text = doc.to_string();
        let parsed = Json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 2 process_name + 1 thread_name + 2 spans
        assert_eq!(events.len(), 5);
        let phs: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(Json::as_str)).collect();
        assert_eq!(phs.iter().filter(|p| **p == "M").count(), 3);
        assert!(phs.contains(&"X") && phs.contains(&"i"));
        let x = events.iter().find(|e| e.get("ph").and_then(Json::as_str) == Some("X")).unwrap();
        assert_eq!(x.get("ts").and_then(Json::as_f64), Some(1.0));
        assert_eq!(x.get("dur").and_then(Json::as_f64), Some(9.0));
        assert_eq!(x.get("cat").and_then(Json::as_str), Some("node"));
        assert_eq!(x.get("args").and_then(|a| a.get("class")).and_then(Json::as_str), Some("edge"));
        let i = events.iter().find(|e| e.get("ph").and_then(Json::as_str) == Some("i")).unwrap();
        assert_eq!(i.get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(i.get("pid").and_then(Json::as_usize), Some(3));
    }

    #[test]
    fn deserializer_rejects_garbage() {
        for bad in ["{}", r#"{"spans": [{}]}"#, r#"{"spans": [{"kind": "Z"}]}"#] {
            assert!(trace_from_json(&Json::parse(bad).unwrap()).is_err(), "{bad}");
        }
    }

    #[test]
    fn metrics_snapshot_renders_flat() {
        metrics::counter("test.export.hits").add(3);
        let doc = metrics_json();
        assert!(doc.get("test.export.hits").and_then(Json::as_usize).is_some());
        let text = doc.to_string();
        assert!(Json::parse(&text).is_ok());
    }
}
