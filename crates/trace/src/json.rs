//! A minimal JSON value, writer and parser.
//!
//! The trace exporters, the shard protocol and the benchmark row dumps all
//! need machine-readable output, and the workspace builds offline (no
//! serde). This module covers exactly what those producers and consumers
//! use: the six JSON value kinds, string escaping (including surrogate-pair
//! decoding — span names carry arbitrary node and scenario names), and a
//! strict recursive-descent parser that round-trips everything the writer
//! emits. It lives at the bottom of the crate stack so both this crate's
//! exporters and `timepiece-sched`'s shard reports (which re-exports it)
//! can use it.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects preserve insertion order (stable output for diffs
/// and golden tests).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `usize`, if this is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (one value, optionally surrounded by
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Infinity literal; null keeps the
                    // writer→parser round-trip promise for every value
                    write!(f, "null")
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { message: message.into(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    /// Reads the 4 hex digits of a `\u` escape starting at `at` (the offset
    /// of the first digit).
    fn hex4(&self, at: usize) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            if (0xd800..0xdc00).contains(&code)
                                && self.bytes.get(self.pos + 5..self.pos + 7) == Some(b"\\u")
                            {
                                // high surrogate followed by another \u
                                // escape: decode the pair (JSON's only way
                                // to spell astral-plane characters)
                                let low = self.hex4(self.pos + 7)?;
                                if (0xdc00..0xe000).contains(&low) {
                                    let combined =
                                        0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    out.push(char::from_u32(combined).expect("paired surrogates"));
                                    self.pos += 10;
                                } else {
                                    // \u pair that is not a surrogate pair:
                                    // lone high surrogate, then the second
                                    // escape stands alone
                                    out.push('\u{fffd}');
                                    self.pos += 4;
                                }
                            } else {
                                // unpaired surrogates have no scalar value;
                                // map them to the replacement character
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                self.pos += 4;
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe)
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err(format!("bad number {text:?}")))
    }
}

/// Convenience: the object's pairs as a map, for consumers that do not care
/// about ordering.
pub fn object_map(value: &Json) -> Option<BTreeMap<&str, &Json>> {
    match value {
        Json::Obj(pairs) => Some(pairs.iter().map(|(k, v)| (k.as_str(), v)).collect()),
        _ => None,
    }
}

/// Default per-line byte bound for [`read_line_value`]: generous enough for
/// any report the workspace produces, small enough that a protocol peer
/// cannot make a reader buffer unboundedly.
pub const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

fn framing_err(message: impl Into<String>, offset: usize) -> JsonError {
    JsonError { message: message.into(), offset }
}

/// Reads one newline-delimited JSON value from `reader`.
///
/// This is the wire codec of the NDJSON protocols (shard reports, the
/// `timepieced` daemon): one value per `\n`-terminated line, at most
/// `max_bytes` per line. A trailing `\r` before the newline is tolerated.
/// Returns `Ok(None)` on a clean end of stream (no bytes before EOF).
///
/// # Errors
///
/// Returns [`JsonError`] when
///
/// * the stream ends mid-line (a partial read: bytes arrived but no
///   terminating newline),
/// * a line exceeds `max_bytes` (the offending prefix is *not* consumed
///   further; the connection should be dropped),
/// * the line is not valid UTF-8, or
/// * the line is not a single well-formed JSON document.
///
/// I/O errors are folded into the same error type (`message` starts with
/// `"io:"`), so protocol loops have one failure path.
pub fn read_line_value(
    reader: &mut impl std::io::BufRead,
    max_bytes: usize,
) -> Result<Option<Json>, JsonError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(framing_err(format!("io: {e}"), buf.len())),
        };
        if chunk.is_empty() {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(framing_err("unexpected end of stream inside a line", buf.len()));
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if buf.len() + i > max_bytes {
                    return Err(framing_err(
                        format!("line exceeds {max_bytes} bytes"),
                        buf.len() + i,
                    ));
                }
                buf.extend_from_slice(&chunk[..i]);
                reader.consume(i + 1);
                break;
            }
            None => {
                let n = chunk.len();
                if buf.len() + n > max_bytes {
                    return Err(framing_err(
                        format!("line exceeds {max_bytes} bytes"),
                        buf.len() + n,
                    ));
                }
                buf.extend_from_slice(chunk);
                reader.consume(n);
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    let text = std::str::from_utf8(&buf)
        .map_err(|e| framing_err("line is not valid UTF-8", e.valid_up_to()))?;
    Json::parse(text).map(Some)
}

/// Writes one JSON value as an NDJSON line (compact form, terminated by
/// `\n`) and flushes, so a blocking peer sees the frame immediately.
///
/// The writer's compact [`fmt::Display`] form never contains a raw newline
/// (strings are escaped), so every value is exactly one frame.
///
/// # Errors
///
/// Propagates the writer's I/O errors.
pub fn write_line_value(writer: &mut impl std::io::Write, value: &Json) -> std::io::Result<()> {
    writeln!(writer, "{value}")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let value = Json::obj([
            ("name", Json::str("Ap\"Reach\"\n")),
            ("k", Json::from(8usize)),
            ("wall", Json::Num(1.625)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("rows", Json::arr([Json::from(1usize), Json::from(-2.5), Json::str("x")])),
        ]);
        let text = value.to_string();
        assert_eq!(Json::parse(&text).unwrap(), value);
    }

    #[test]
    fn accessors() {
        let value = Json::parse(r#"{"a": 3, "b": [true, null], "s": "hi"}"#).unwrap();
        assert_eq!(value.get("a").and_then(Json::as_usize), Some(3));
        assert_eq!(value.get("s").and_then(Json::as_str), Some("hi"));
        let arr = value.get("b").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(value.get("missing"), None);
        assert_eq!(object_map(&value).unwrap().len(), 3);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let value = Json::parse(r#""a\\b\"c\nAü""#).unwrap();
        assert_eq!(value.as_str(), Some("a\\b\"c\nAü"));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(42usize).to_string(), "42");
        assert_eq!(Json::Num(0.125).to_string(), "0.125");
    }

    #[test]
    fn non_finite_numbers_print_as_null_and_still_parse() {
        for n in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let text = Json::arr([Json::Num(n)]).to_string();
            assert_eq!(Json::parse(&text).unwrap(), Json::arr([Json::Null]));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let value = Json::parse(" {\n\t\"a\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(value.get("a").and_then(Json::as_arr).unwrap().len(), 2);
    }

    // ---- string-emission hardening (span names carry arbitrary text) ----

    fn roundtrip(s: &str) {
        let text = Json::str(s).to_string();
        let back = Json::parse(&text).unwrap_or_else(|e| panic!("{s:?} emitted {text:?}: {e}"));
        assert_eq!(back.as_str(), Some(s), "round-trip of {s:?} via {text:?}");
    }

    #[test]
    fn roundtrips_every_control_character() {
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            roundtrip(&format!("a{c}b"));
        }
        roundtrip("\u{7f}");
    }

    #[test]
    fn roundtrips_quotes_backslashes_and_mixtures() {
        for s in [
            "\"",
            "\\",
            "\\\\",
            "\\\"",
            "a\"b\\c",
            "\\n",
            "ends with backslash\\",
            "\"quoted\"",
            "\\u0041 not an escape",
        ] {
            roundtrip(s);
        }
    }

    #[test]
    fn roundtrips_non_ascii_and_astral_characters() {
        for s in ["ü", "nodeα·β", "日本語", "🦀 trace", "\u{10ffff}", "e\u{301}"] {
            roundtrip(s);
        }
    }

    #[test]
    fn roundtrips_strings_used_as_object_keys() {
        for key in ["sp\"reach\"", "tab\there", "日本", "back\\slash"] {
            let value = Json::obj([(key, Json::from(1usize))]);
            let back = Json::parse(&value.to_string()).unwrap();
            assert_eq!(back.get(key).and_then(Json::as_usize), Some(1), "key {key:?}");
        }
    }

    #[test]
    fn decodes_surrogate_pair_escapes() {
        // other JSON writers spell astral characters as surrogate pairs
        assert_eq!(Json::parse("\"\\ud83e\\udd80\"").unwrap().as_str(), Some("🦀"));
        assert_eq!(Json::parse("\"x\\ud834\\udd1ey\"").unwrap().as_str(), Some("x𝄞y"));
    }

    #[test]
    fn lone_surrogate_escapes_become_replacement_characters() {
        // a high surrogate with no low half after it
        assert_eq!(Json::parse("\"\\ud800\"").unwrap().as_str(), Some("\u{fffd}"));
        assert_eq!(Json::parse("\"\\ud800x\"").unwrap().as_str(), Some("\u{fffd}x"));
        // a lone low surrogate
        assert_eq!(Json::parse("\"\\udc00\"").unwrap().as_str(), Some("\u{fffd}"));
        // high surrogate followed by a \u escape that is not a low half:
        // the replacement character, then the second escape stands alone
        assert_eq!(Json::parse("\"\\ud800\\u0041\"").unwrap().as_str(), Some("\u{fffd}A"));
    }

    #[test]
    fn truncated_unicode_escapes_are_rejected() {
        for bad in ["\"\\u12\"", "\"\\u\"", "\"\\uzzzz\"", "\"\\ud83e\\uqqqq\""] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn line_codec_roundtrips_values() {
        let values = [
            Json::obj([("verb", Json::str("status")), ("id", Json::from(3usize))]),
            Json::arr([Json::Null, Json::from(true)]),
            Json::str("newline \n and \"quotes\""),
        ];
        let mut wire = Vec::new();
        for v in &values {
            write_line_value(&mut wire, v).unwrap();
        }
        // escaped strings keep each value on exactly one line
        assert_eq!(wire.iter().filter(|&&b| b == b'\n').count(), values.len());
        let mut reader = std::io::BufReader::new(wire.as_slice());
        for v in &values {
            assert_eq!(read_line_value(&mut reader, MAX_LINE_BYTES).unwrap().as_ref(), Some(v));
        }
        assert_eq!(read_line_value(&mut reader, MAX_LINE_BYTES).unwrap(), None);
    }

    #[test]
    fn line_codec_reads_across_tiny_buffer_chunks() {
        // a BufReader with a 1-byte buffer forces the multi-fill path
        let value = Json::obj([("k", Json::from(8usize)), ("name", Json::str("SpReach"))]);
        let mut wire = Vec::new();
        write_line_value(&mut wire, &value).unwrap();
        let mut reader = std::io::BufReader::with_capacity(1, wire.as_slice());
        assert_eq!(read_line_value(&mut reader, MAX_LINE_BYTES).unwrap(), Some(value));
    }

    #[test]
    fn line_codec_rejects_partial_reads() {
        // bytes arrived, but the peer died before the terminating newline
        let mut reader = std::io::BufReader::new(&b"{\"verb\":\"check\""[..]);
        let err = read_line_value(&mut reader, MAX_LINE_BYTES).unwrap_err();
        assert!(err.message.contains("end of stream"), "{err}");
    }

    #[test]
    fn line_codec_rejects_oversized_lines() {
        let mut wire = Vec::new();
        write_line_value(&mut wire, &Json::str("x".repeat(100))).unwrap();
        let mut reader = std::io::BufReader::new(wire.as_slice());
        let err = read_line_value(&mut reader, 16).unwrap_err();
        assert!(err.message.contains("exceeds 16 bytes"), "{err}");
        // the same line fits under a larger bound
        let mut reader = std::io::BufReader::new(wire.as_slice());
        assert!(read_line_value(&mut reader, 4096).unwrap().is_some());
    }

    #[test]
    fn line_codec_rejects_invalid_utf8() {
        let mut reader = std::io::BufReader::new(&b"\"ab\xff\xfe\"\n"[..]);
        let err = read_line_value(&mut reader, MAX_LINE_BYTES).unwrap_err();
        assert!(err.message.contains("UTF-8"), "{err}");
        assert_eq!(err.offset, 3, "offset points at the first bad byte");
    }

    #[test]
    fn line_codec_tolerates_crlf_and_rejects_garbage() {
        let mut reader = std::io::BufReader::new(&b"[1,2]\r\n"[..]);
        assert_eq!(
            read_line_value(&mut reader, MAX_LINE_BYTES).unwrap(),
            Some(Json::arr([Json::from(1usize), Json::from(2usize)]))
        );
        let mut reader = std::io::BufReader::new(&b"not json\n"[..]);
        assert!(read_line_value(&mut reader, MAX_LINE_BYTES).is_err());
    }
}
