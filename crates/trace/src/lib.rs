//! `timepiece-trace`: observability for the verification pipeline.
//!
//! The paper's headline claim is about *where time goes* — modular per-node
//! checks stay flat while the monolithic encoding blows up — and tuning the
//! scheduler, the arena or the solver sessions needs the same evidence at
//! finer grain. This crate is the measurement layer every other crate
//! instruments against:
//!
//! * [`mod@span`] — low-overhead structured spans: per-thread append-only
//!   buffers (mirroring the scheduler's per-worker deques; no global lock on
//!   the hot path), parent links for self-time attribution, instant events,
//!   and process merging for shard workers. Off by default: a disabled call
//!   site costs one relaxed atomic load.
//! * [`mod@metrics`] — a static registry of counters and log-bucketed
//!   histograms (subsuming `TimingStats` for streaming use), updated with
//!   relaxed atomics through cached handles.
//! * [`mod@json`] — the workspace's hand-rolled JSON codec (moved here from
//!   `timepiece-sched`, which re-exports it): the wire format for shard
//!   reports and both exporters.
//! * [`mod@export`] — Chrome trace-event output for Perfetto /
//!   `chrome://tracing` (one track per worker, one process group per shard)
//!   and a lossless `Trace` ↔ JSON round-trip for the shard protocol.
//! * [`mod@profile`] — per-phase self-time breakdown (encode / solve /
//!   steal-idle / intern / other), per-node-class rollups and slowest-node
//!   attribution; what `repro profile` prints.
//!
//! # Example
//!
//! ```
//! use timepiece_trace as trace;
//!
//! trace::enable();
//! {
//!     let mut node = trace::span(trace::Phase::Node, "edge-0");
//!     node.arg("class", "edge");
//!     let _solve = trace::span(trace::Phase::Solve, "edge-0/inductive");
//! }
//! let collected = trace::take();
//! assert_eq!(collected.spans.len(), 2);
//! let doc = trace::chrome_trace(&collected);
//! assert!(doc.get("traceEvents").is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod export;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod span;

pub use export::{chrome_trace, metrics_json, trace_from_json, trace_to_json};
pub use json::{Json, JsonError};
pub use metrics::{counter, histogram, Counter, Histogram, MetricValue};
pub use profile::{ClassRow, NodeRow, Profile};
pub use span::{
    disable, enable, enabled, ingest, instant, now_ns, set_thread_label, span, take, Phase,
    SpanGuard, SpanKind, SpanRecord, ThreadInfo, Trace,
};
