//! A static metrics registry: named counters and log-bucketed histograms.
//!
//! Instrumented code holds `&'static` handles (resolved once through a
//! `OnceLock` at the call site), so the steady-state cost of a metric update
//! is one relaxed atomic add — no name lookups, no locks. The registry keeps
//! every metric ever created for the life of the process; [`snapshot`]
//! renders them all, and [`reset`] zeroes the values (keeping registration)
//! so benchmarks can take per-row deltas.
//!
//! Histograms are log₂-bucketed: recording classifies a value into bucket
//! ⌊log₂ v⌋ + 1 with one atomic add, and quantiles are estimated by
//! nearest-rank over the bucket counts (reported as the bucket's geometric
//! midpoint). That subsumes the sweep reports' `TimingStats` for streaming
//! use: where `TimingStats` needs every sample retained and sorted, a
//! histogram answers p50/p99 from 65 counters at any moment.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use parking_lot::Mutex;

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `b ≥ 1` holds
/// values with ⌊log₂ v⌋ = b − 1, i.e. `v ∈ [2^(b−1), 2^b)`.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples (typically nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The geometric midpoint of bucket `b` — the value a quantile estimate
/// reports for samples landing there.
fn bucket_mid(b: usize) -> u64 {
    if b == 0 {
        return 0;
    }
    let lo = 1u64 << (b - 1);
    // 1.5 × 2^(b−1), saturating at the top bucket
    lo.saturating_add(lo / 2)
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration, in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// How many samples were recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The mean sample, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Nearest-rank `q`-quantile estimate (the geometric midpoint of the
    /// bucket holding the rank). Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (b, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_mid(b);
            }
        }
        bucket_mid(BUCKETS - 1)
    }

    /// Median estimate (`quantile(0.5)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The counter registered under `name`, created on first use. Call sites on
/// hot paths should cache the handle in a `OnceLock`.
pub fn counter(name: &str) -> Arc<Counter> {
    Arc::clone(registry().counters.lock().entry(name.to_owned()).or_default())
}

/// The histogram registered under `name`, created on first use.
pub fn histogram(name: &str) -> Arc<Histogram> {
    Arc::clone(registry().histograms.lock().entry(name.to_owned()).or_default())
}

/// One metric's rendered form in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's value.
    Counter(u64),
    /// A histogram, summarized.
    Histogram {
        /// Sample count.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Median estimate.
        p50: u64,
        /// 99th-percentile estimate.
        p99: u64,
    },
}

/// A flat snapshot of every registered metric, sorted by name.
pub fn snapshot() -> Vec<(String, MetricValue)> {
    let mut out: Vec<(String, MetricValue)> = Vec::new();
    for (name, c) in registry().counters.lock().iter() {
        out.push((name.clone(), MetricValue::Counter(c.get())));
    }
    for (name, h) in registry().histograms.lock().iter() {
        out.push((
            name.clone(),
            MetricValue::Histogram { count: h.count(), sum: h.sum(), p50: h.p50(), p99: h.p99() },
        ));
    }
    out.sort_by(|(a, _), (b, _)| a.cmp(b));
    out
}

/// The current value of counter `name`, zero if never registered. (Reads the
/// registry; not for hot paths.)
pub fn counter_value(name: &str) -> u64 {
    registry().counters.lock().get(name).map_or(0, |c| c.get())
}

/// Zeroes every registered metric, keeping the handles valid.
pub fn reset() {
    for c in registry().counters.lock().values() {
        c.reset();
    }
    for h in registry().histograms.lock().values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let a = counter("test.metrics.shared");
        let b = counter("test.metrics.shared");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(counter_value("test.metrics.shared"), 3);
        assert_eq!(counter_value("test.metrics.never"), 0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.mean(), 50);
        // log-bucketed estimates: the median of 1..=100 (50.5) lands in the
        // [32,64) bucket, p99 in [64,128)
        assert_eq!(h.p50(), 48);
        assert_eq!(h.p99(), 96);
        h.record(0);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn histogram_records_durations() {
        let h = histogram("test.metrics.dur");
        h.record_duration(Duration::from_nanos(7));
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 7);
    }

    #[test]
    fn snapshot_lists_both_kinds_sorted() {
        counter("test.snap.a").add(1);
        histogram("test.snap.b").record(4);
        let snap = snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        let a = names.iter().position(|n| *n == "test.snap.a").unwrap();
        let b = names.iter().position(|n| *n == "test.snap.b").unwrap();
        assert!(a < b);
        assert!(matches!(
            snap.iter().find(|(n, _)| n == "test.snap.b").unwrap().1,
            MetricValue::Histogram { count, .. } if count >= 1
        ));
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_mid(0), 0);
        assert_eq!(bucket_mid(1), 1);
        assert_eq!(bucket_mid(7), 96);
    }
}
