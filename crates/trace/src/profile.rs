//! Phase-attributed profiling over a collected [`Trace`].
//!
//! Attribution uses **self time**: a span's duration minus the durations of
//! its direct children, so nested encode/solve spans are not double-counted
//! against the node check that contains them. A `Node` span's self time (its
//! bookkeeping beyond the encode/solve work inside it) lands in the `other`
//! bucket. Intern time is measured by the arena's registry counter (interning
//! is too hot for per-call spans) and passed in by the caller; it overlaps
//! the encode phase rather than partitioning it — the table reports it as an
//! informational column.

use std::collections::HashMap;

use crate::span::{Phase, SpanKind, Trace};

/// One node class's share of the work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassRow {
    /// Node class name (`edge`, `aggregation`, `core`, …).
    pub class: String,
    /// How many node checks carried this class.
    pub nodes: usize,
    /// Total duration of those node spans.
    pub total_ns: u64,
    /// Encode self time nested under them.
    pub encode_ns: u64,
    /// Solve self time nested under them.
    pub solve_ns: u64,
}

/// One node check, for slowest-node attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRow {
    /// The node span's display name.
    pub name: String,
    /// Node class (empty if the span carried none).
    pub class: String,
    /// Verdict annotation (empty if none).
    pub verdict: String,
    /// Full duration of the node span.
    pub total_ns: u64,
    /// Solve self time nested under it.
    pub solve_ns: u64,
}

/// A per-phase / per-class / per-node breakdown of one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Self time attributed to each phase, indexed like [`Phase::ALL`].
    /// `Node` self time is folded into `Other`; `Intern` holds the arena
    /// counter value handed to [`Profile::from_trace`].
    pub phase_self_ns: [u64; Phase::ALL.len()],
    /// Wall-clock extent of the trace (max end − min start), zero if empty.
    pub wall_ns: u64,
    /// Per-class rollup, sorted by descending total.
    pub classes: Vec<ClassRow>,
    /// Every node span, sorted by descending duration.
    pub nodes: Vec<NodeRow>,
}

fn phase_index(phase: Phase) -> usize {
    Phase::ALL.iter().position(|p| *p == phase).expect("phase in ALL")
}

impl Profile {
    /// Computes the breakdown. `intern_ns` is the arena's accumulated
    /// interning time (from the metrics registry); pass zero when profiling
    /// a trace from another process whose registry is gone.
    pub fn from_trace(trace: &Trace, intern_ns: u64) -> Profile {
        let mut profile = Profile::default();
        profile.phase_self_ns[phase_index(Phase::Intern)] = intern_ns;

        // parent links and per-parent child-duration sums (complete spans
        // only; instants carry no time)
        let mut meta: HashMap<u64, (Phase, u64)> = HashMap::new();
        let mut child_ns: HashMap<u64, u64> = HashMap::new();
        for span in &trace.spans {
            if span.kind != SpanKind::Complete {
                continue;
            }
            meta.insert(span.id, (span.phase, span.parent));
            *child_ns.entry(span.parent).or_default() += span.dur_ns;
        }

        // nearest enclosing Node span, walking parent links (bounded: the
        // parent forest is acyclic, but a truncated trace could be missing
        // links, so give up rather than spin)
        let enclosing_node = |mut id: u64| -> Option<u64> {
            for _ in 0..64 {
                let (phase, parent) = *meta.get(&id)?;
                if phase == Phase::Node {
                    return Some(id);
                }
                id = parent;
            }
            None
        };

        let mut node_solve: HashMap<u64, u64> = HashMap::new();
        let mut node_encode: HashMap<u64, u64> = HashMap::new();
        let mut min_start = u64::MAX;
        let mut max_end = 0u64;
        for span in &trace.spans {
            min_start = min_start.min(span.start_ns);
            max_end = max_end.max(span.end_ns());
            if span.kind != SpanKind::Complete {
                continue;
            }
            let self_ns = span.dur_ns.saturating_sub(child_ns.get(&span.id).copied().unwrap_or(0));
            let bucket = if span.phase == Phase::Node { Phase::Other } else { span.phase };
            profile.phase_self_ns[phase_index(bucket)] += self_ns;
            if matches!(span.phase, Phase::Solve | Phase::Encode) {
                if let Some(node) = enclosing_node(span.parent) {
                    let sums =
                        if span.phase == Phase::Solve { &mut node_solve } else { &mut node_encode };
                    *sums.entry(node).or_default() += self_ns;
                }
            }
        }
        profile.wall_ns = max_end.saturating_sub(min_start.min(max_end));

        let mut classes: HashMap<String, ClassRow> = HashMap::new();
        for span in &trace.spans {
            if span.kind != SpanKind::Complete || span.phase != Phase::Node {
                continue;
            }
            let class = span.arg("class").unwrap_or("").to_owned();
            let solve_ns = node_solve.get(&span.id).copied().unwrap_or(0);
            let encode_ns = node_encode.get(&span.id).copied().unwrap_or(0);
            profile.nodes.push(NodeRow {
                name: span.name.clone(),
                class: class.clone(),
                verdict: span.arg("verdict").unwrap_or("").to_owned(),
                total_ns: span.dur_ns,
                solve_ns,
            });
            let row = classes.entry(class.clone()).or_insert_with(|| ClassRow {
                class,
                nodes: 0,
                total_ns: 0,
                encode_ns: 0,
                solve_ns: 0,
            });
            row.nodes += 1;
            row.total_ns += span.dur_ns;
            row.encode_ns += encode_ns;
            row.solve_ns += solve_ns;
        }
        profile.nodes.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        profile.classes = classes.into_values().collect();
        profile.classes.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.class.cmp(&b.class)));
        profile
    }

    /// Self time attributed to `phase`.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.phase_self_ns[phase_index(phase)]
    }

    /// Sum of all phase buckets except `intern` (which overlaps encode
    /// rather than partitioning the time).
    pub fn accounted_ns(&self) -> u64 {
        Phase::ALL.iter().filter(|p| **p != Phase::Intern).map(|p| self.phase_ns(*p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRecord;

    fn complete(
        id: u64,
        parent: u64,
        phase: Phase,
        name: &str,
        start: u64,
        dur: u64,
        args: &[(&str, &str)],
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            kind: SpanKind::Complete,
            phase,
            name: name.to_owned(),
            start_ns: start,
            dur_ns: dur,
            pid: 0,
            tid: 1,
            args: args.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
        }
    }

    fn sample() -> Trace {
        Trace {
            spans: vec![
                // node A (edge): 100 total = 20 encode + 60 solve + 20 self
                complete(1, 0, Phase::Node, "A", 0, 100, &[("class", "edge"), ("verdict", "ok")]),
                complete(2, 1, Phase::Encode, "A/vc", 5, 20, &[]),
                complete(3, 1, Phase::Solve, "A/vc", 30, 60, &[]),
                // node B (core): 50 total = 40 solve + 10 self
                complete(4, 0, Phase::Node, "B", 100, 50, &[("class", "core"), ("verdict", "ok")]),
                complete(5, 4, Phase::Solve, "B/vc", 105, 40, &[]),
                // top-level idle
                complete(6, 0, Phase::Idle, "claim", 150, 30, &[]),
            ],
            threads: vec![],
            processes: vec![],
        }
    }

    #[test]
    fn self_time_subtracts_children_and_folds_node_into_other() {
        let p = Profile::from_trace(&sample(), 7);
        assert_eq!(p.phase_ns(Phase::Encode), 20);
        assert_eq!(p.phase_ns(Phase::Solve), 100);
        assert_eq!(p.phase_ns(Phase::Idle), 30);
        assert_eq!(p.phase_ns(Phase::Intern), 7);
        assert_eq!(p.phase_ns(Phase::Node), 0, "node self time folds into other");
        assert_eq!(p.phase_ns(Phase::Other), 30);
        assert_eq!(p.wall_ns, 180);
        assert_eq!(p.accounted_ns(), 180);
    }

    #[test]
    fn classes_and_nodes_attribute_nested_work() {
        let p = Profile::from_trace(&sample(), 0);
        assert_eq!(p.nodes.len(), 2);
        assert_eq!(p.nodes[0].name, "A", "sorted by descending duration");
        assert_eq!(p.nodes[0].solve_ns, 60);
        assert_eq!(p.nodes[0].verdict, "ok");
        assert_eq!(p.nodes[1].solve_ns, 40);
        let edge = p.classes.iter().find(|c| c.class == "edge").unwrap();
        assert_eq!((edge.nodes, edge.total_ns, edge.encode_ns, edge.solve_ns), (1, 100, 20, 60));
        let core = p.classes.iter().find(|c| c.class == "core").unwrap();
        assert_eq!((core.nodes, core.total_ns, core.encode_ns, core.solve_ns), (1, 50, 0, 40));
    }

    #[test]
    fn empty_trace_profiles_to_zero() {
        let p = Profile::from_trace(&Trace::default(), 0);
        assert_eq!(p.wall_ns, 0);
        assert_eq!(p.accounted_ns(), 0);
        assert!(p.nodes.is_empty() && p.classes.is_empty());
    }
}
