//! Low-overhead structured span recording.
//!
//! Every instrumented thread owns an append-only buffer of finished spans —
//! the same per-worker layout as the scheduler's steal deques, so the hot
//! path never touches a global lock: starting a span is one atomic load (the
//! enabled flag) plus a monotonic clock read, and finishing one appends to
//! the thread's own buffer under its own (uncontended) mutex. A global
//! registry only holds `Arc`s to the buffers so a collector can drain them
//! all, including buffers of threads that have since exited.
//!
//! Tracing is **off by default**: with the flag down, [`span`] returns an
//! unarmed guard and records nothing, so instrumented code costs one relaxed
//! atomic load per call site. [`enable`] arms the whole process.
//!
//! Parentage is tracked per thread: the innermost open span on the current
//! thread is the parent of the next one opened, so drained spans form a
//! forest whose parent links let a profiler compute *self* time (a node
//! check's own bookkeeping, distinct from the encode and solve spans nested
//! inside it).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

/// The broad phase a span (or instant event) belongs to; the Chrome trace
/// category and the unit of the profiler's time attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Compiling terms into solver ASTs.
    Encode,
    /// Inside a solver `check` call.
    Solve,
    /// Scheduler time spent claiming work: own-deque pops, steal scans and
    /// steal transfers (the "steal-idle" of the profile breakdown).
    Idle,
    /// Hash-consing arena interning (attributed via counters; interning is
    /// too hot for per-call spans).
    Intern,
    /// One whole node check; its self time (beyond the encode/solve spans
    /// nested inside) lands in the profile's "other" bucket.
    Node,
    /// One CEGIS inference round.
    Round,
    /// Network simulation.
    Sim,
    /// One protocol request handled by the `timepieced` daemon (its self
    /// time is the request overhead beyond the node checks nested inside).
    Request,
    /// Cross-host coordination: a distributed shard's round trip on the
    /// coordinator side (send `check`, await heartbeats and the report).
    /// Its self time beyond the worker's own spans is wire + remote queue.
    Wire,
    /// Everything else (scope events, cancellations, harness work).
    Other,
}

impl Phase {
    /// Every phase, in profile-table order.
    pub const ALL: [Phase; 10] = [
        Phase::Encode,
        Phase::Solve,
        Phase::Idle,
        Phase::Intern,
        Phase::Node,
        Phase::Round,
        Phase::Sim,
        Phase::Request,
        Phase::Wire,
        Phase::Other,
    ];

    /// The phase's stable lower-case name (the Chrome `cat` field).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Encode => "encode",
            Phase::Solve => "solve",
            Phase::Idle => "steal-idle",
            Phase::Intern => "intern",
            Phase::Node => "node",
            Phase::Round => "round",
            Phase::Sim => "sim",
            Phase::Request => "request",
            Phase::Wire => "wire",
            Phase::Other => "other",
        }
    }

    /// Parses a name produced by [`Phase::name`].
    pub fn parse(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Is the record a duration or a point event?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A completed duration span (Chrome `ph: "X"`).
    Complete,
    /// An instant event (Chrome `ph: "i"`); `dur_ns` is zero.
    Instant,
}

/// One finished span (or instant event), as drained from a thread buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (never zero).
    pub id: u64,
    /// The id of the innermost span open on the same thread when this one
    /// started; zero at the top level.
    pub parent: u64,
    /// Duration span or instant event.
    pub kind: SpanKind,
    /// The phase the span's time is attributed to.
    pub phase: Phase,
    /// Display name (node name, VC name, …). May contain arbitrary
    /// user-provided text — exporters must escape it.
    pub name: String,
    /// Start, in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (zero for instants).
    pub dur_ns: u64,
    /// Originating process: 0 for the local process; shard ingestion retags
    /// foreign spans with the shard's process slot.
    pub pid: u32,
    /// Originating thread's trace-local id (unique per pid).
    pub tid: u64,
    /// Free-form key/value annotations (node class, verdict, …).
    pub args: Vec<(String, String)>,
}

impl SpanRecord {
    /// End time in nanoseconds since the trace epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }

    /// The value of annotation `key`, if present.
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A thread's label, as drained alongside its spans.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadInfo {
    /// The process the thread belongs to (0 = local).
    pub pid: u32,
    /// Trace-local thread id.
    pub tid: u64,
    /// Human label (`worker0`, `pool-worker2`, …), empty if never set.
    pub label: String,
}

/// Everything one collection drained: spans, thread labels, and the names of
/// any foreign (shard) processes merged in.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All finished spans and instants, across threads and merged processes.
    pub spans: Vec<SpanRecord>,
    /// Labels for the threads that appear in `spans`.
    pub threads: Vec<ThreadInfo>,
    /// Names for the non-local processes that appear (`pid`, name).
    pub processes: Vec<(u32, String)>,
}

impl Trace {
    /// Is there nothing in the trace?
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Appends another trace's contents (used by the shard coordinator after
    /// retagging a worker's pid).
    pub fn merge(&mut self, other: Trace) {
        self.spans.extend(other.spans);
        self.threads.extend(other.threads);
        self.processes.extend(other.processes);
    }
}

/// One thread's buffer: spans appended on drop, drained by the collector.
struct ThreadBuffer {
    tid: u64,
    state: Mutex<BufferState>,
}

#[derive(Default)]
struct BufferState {
    spans: Vec<SpanRecord>,
    label: String,
}

struct Collector {
    buffers: Mutex<Vec<Arc<ThreadBuffer>>>,
    /// Spans ingested from other processes (shard workers), already
    /// pid-retagged, waiting for the next [`take`].
    foreign: Mutex<Trace>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_FOREIGN_PID: AtomicU32 = AtomicU32::new(1);

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        buffers: Mutex::new(Vec::new()),
        foreign: Mutex::new(Trace::default()),
    })
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (first use wins; monotonic).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadBuffer>>> = const { RefCell::new(None) };
    static OPEN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn with_buffer<R>(f: impl FnOnce(&ThreadBuffer) -> R) -> R {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buffer = slot.get_or_insert_with(|| {
            let buffer = Arc::new(ThreadBuffer {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                state: Mutex::new(BufferState::default()),
            });
            collector().buffers.lock().push(Arc::clone(&buffer));
            buffer
        });
        f(buffer)
    })
}

/// Arms span recording process-wide. Idempotent.
pub fn enable() {
    ENABLED.store(true, Ordering::Release);
}

/// Disarms span recording. Spans already open finish recording; new ones
/// become no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Is recording armed?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Labels the current thread's track in exported traces (`worker0`, …).
/// Cheap enough to call unconditionally at thread start; recorded even while
/// tracing is disabled so late-enabled traces still name their tracks.
pub fn set_thread_label(label: impl Into<String>) {
    with_buffer(|b| b.state.lock().label = label.into());
}

/// Opens a span; the returned guard records it into the thread's buffer when
/// dropped. Unarmed (free) when tracing is disabled.
pub fn span(phase: Phase, name: impl Into<String>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { armed: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = OPEN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied().unwrap_or(0);
        s.push(id);
        parent
    });
    SpanGuard {
        armed: Some(ArmedSpan {
            id,
            parent,
            phase,
            name: name.into(),
            start_ns: now_ns(),
            args: Vec::new(),
        }),
    }
}

/// Records an instant event (zero duration) under the currently open span.
/// No-op when tracing is disabled.
pub fn instant(phase: Phase, name: impl Into<String>) {
    if !enabled() {
        return;
    }
    let parent = OPEN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    let record = SpanRecord {
        id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
        parent,
        kind: SpanKind::Instant,
        phase,
        name: name.into(),
        start_ns: now_ns(),
        dur_ns: 0,
        pid: 0,
        tid: 0,
        args: Vec::new(),
    };
    with_buffer(|b| {
        let mut state = b.state.lock();
        let mut record = record;
        record.tid = b.tid;
        state.spans.push(record);
    });
}

struct ArmedSpan {
    id: u64,
    parent: u64,
    phase: Phase,
    name: String,
    start_ns: u64,
    args: Vec<(String, String)>,
}

/// An open span; finishes (and records) on drop.
#[derive(Debug)]
pub struct SpanGuard {
    armed: Option<ArmedSpan>,
}

impl std::fmt::Debug for ArmedSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArmedSpan").field("id", &self.id).field("name", &self.name).finish()
    }
}

impl SpanGuard {
    /// Attaches a key/value annotation (node class, verdict, batch size…).
    /// No-op on unarmed guards.
    pub fn arg(&mut self, key: impl Into<String>, value: impl Into<String>) {
        if let Some(armed) = &mut self.armed {
            armed.args.push((key.into(), value.into()));
        }
    }

    /// Is this guard actually recording?
    pub fn is_armed(&self) -> bool {
        self.armed.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(armed) = self.armed.take() else { return };
        let end = now_ns();
        OPEN_STACK.with(|s| {
            // unwind the stack to (and past) this span: a guard dropped out
            // of order (e.g. held across an early return alongside inner
            // guards) must not leave stale parents behind
            let mut s = s.borrow_mut();
            if let Some(pos) = s.iter().rposition(|&id| id == armed.id) {
                s.truncate(pos);
            }
        });
        let record = SpanRecord {
            id: armed.id,
            parent: armed.parent,
            kind: SpanKind::Complete,
            phase: armed.phase,
            name: armed.name,
            start_ns: armed.start_ns,
            dur_ns: end.saturating_sub(armed.start_ns),
            pid: 0,
            tid: 0,
            args: armed.args,
        };
        with_buffer(|b| {
            let mut state = b.state.lock();
            let mut record = record;
            record.tid = b.tid;
            state.spans.push(record);
        });
    }
}

/// Merges spans collected in another process into the local collector,
/// retagged under a fresh process slot named `process_name`. Returns the pid
/// the spans were filed under. The next [`take`] includes them.
pub fn ingest(process_name: impl Into<String>, mut foreign: Trace) -> u32 {
    let pid = NEXT_FOREIGN_PID.fetch_add(1, Ordering::Relaxed);
    for span in &mut foreign.spans {
        span.pid = pid;
    }
    for thread in &mut foreign.threads {
        thread.pid = pid;
    }
    let mut store = collector().foreign.lock();
    store.processes.push((pid, process_name.into()));
    store.spans.append(&mut foreign.spans);
    store.threads.append(&mut foreign.threads);
    pid
}

/// Drains every thread buffer (and any ingested foreign spans) into one
/// [`Trace`], ordered by start time. Thread labels are retained for future
/// collections; buffers of exited threads are pruned once drained.
pub fn take() -> Trace {
    let mut trace = std::mem::take(&mut *collector().foreign.lock());
    {
        let mut buffers = collector().buffers.lock();
        buffers.retain(|buffer| {
            let mut state = buffer.state.lock();
            trace.spans.append(&mut state.spans);
            if !state.label.is_empty() {
                trace.threads.push(ThreadInfo {
                    pid: 0,
                    tid: buffer.tid,
                    label: state.label.clone(),
                });
            }
            // the thread-local side holds the other strong reference; when
            // it is gone the thread exited and the (now empty) buffer can go
            Arc::strong_count(buffer) > 1
        });
    }
    trace.spans.sort_by_key(|s| (s.pid, s.start_ns, s.id));
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole module shares process-global state, so tests serialize on
    /// one lock and drain before/after.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = LOCK.get_or_init(|| Mutex::new(())).lock();
        let _ = take();
        enable();
        guard
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = serial();
        disable();
        {
            let mut s = span(Phase::Solve, "ignored");
            assert!(!s.is_armed());
            s.arg("k", "v");
            instant(Phase::Other, "ignored");
        }
        assert!(take().is_empty());
        enable();
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let _g = serial();
        {
            let _outer = span(Phase::Node, "outer");
            let _inner = span(Phase::Solve, "inner");
            instant(Phase::Other, "tick");
        }
        let trace = take();
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = trace.spans.iter().find(|s| s.name == "inner").unwrap();
        let tick = trace.spans.iter().find(|s| s.name == "tick").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(tick.parent, inner.id);
        assert_eq!(tick.kind, SpanKind::Instant);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
        assert_eq!(outer.tid, inner.tid);
    }

    #[test]
    fn out_of_order_guard_drop_unwinds_the_stack() {
        let _g = serial();
        {
            let outer = span(Phase::Node, "outer");
            let inner = span(Phase::Solve, "inner");
            drop(outer); // dropped before `inner`: must unwind past both
            let sibling = span(Phase::Encode, "sibling");
            drop(sibling);
            drop(inner);
        }
        let trace = take();
        let sibling = trace.spans.iter().find(|s| s.name == "sibling").unwrap();
        assert_eq!(sibling.parent, 0, "stack must not point at a closed span");
    }

    #[test]
    fn threads_get_distinct_tids_and_labels() {
        let _g = serial();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    set_thread_label(format!("t{i}"));
                    let _s = span(Phase::Node, format!("on-{i}"));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let trace = take();
        let tids: std::collections::BTreeSet<u64> =
            trace.spans.iter().filter(|s| s.name.starts_with("on-")).map(|s| s.tid).collect();
        assert_eq!(tids.len(), 3);
        let labels: std::collections::BTreeSet<&str> = trace
            .threads
            .iter()
            .filter(|t| t.label.starts_with('t'))
            .map(|t| t.label.as_str())
            .collect();
        assert!(labels.contains("t0") && labels.contains("t1") && labels.contains("t2"));
    }

    #[test]
    fn ingest_retags_pids_and_names_the_process() {
        let _g = serial();
        let foreign = Trace {
            spans: vec![SpanRecord {
                id: 1,
                parent: 0,
                kind: SpanKind::Complete,
                phase: Phase::Solve,
                name: "remote".to_owned(),
                start_ns: 10,
                dur_ns: 5,
                pid: 0,
                tid: 1,
                args: vec![],
            }],
            threads: vec![ThreadInfo { pid: 0, tid: 1, label: "w".to_owned() }],
            processes: vec![],
        };
        let pid = ingest("shard0", foreign);
        assert!(pid > 0);
        let trace = take();
        let remote = trace.spans.iter().find(|s| s.name == "remote").unwrap();
        assert_eq!(remote.pid, pid);
        assert!(trace.processes.iter().any(|(p, n)| *p == pid && n == "shard0"));
        assert!(trace.threads.iter().any(|t| t.pid == pid && t.label == "w"));
    }

    #[test]
    fn take_drains_and_second_take_is_empty_of_spans() {
        let _g = serial();
        drop(span(Phase::Other, "one"));
        assert_eq!(take().spans.len(), 1);
        assert!(take().spans.is_empty());
    }
}
