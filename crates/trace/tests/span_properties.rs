//! Property tests for the span collector: under any well-nested sequence of
//! span opens and closes on one thread, every drained complete span ends at
//! or after its start, and every child span (or instant) lies entirely
//! inside the span that was open when it was created.

use proptest::prelude::*;
use timepiece_trace::{instant, span, take, Phase, SpanKind, Trace};

/// Tests in this binary share the process-global collector; serialize them.
/// (The shim's `lock()` hands back the std guard directly.)
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Replays `ops` as a well-nested span workload and drains the result.
/// Opcodes: 0–3 open a span of one of four phases, 4–5 close the innermost
/// open span, 6 emits an instant, anything else is a no-op.
fn run_workload(ops: &[u8]) -> Trace {
    let _guard = serial();
    let _ = take();
    timepiece_trace::enable();
    let phases = [Phase::Encode, Phase::Solve, Phase::Idle, Phase::Node];
    let mut open = Vec::new();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            0..=3 => {
                let mut guard = span(phases[op as usize], format!("s{i}"));
                guard.arg("i", i.to_string());
                open.push(guard);
            }
            4 | 5 => {
                // closing always pops the innermost guard, so the workload
                // is well-nested by construction
                open.pop();
            }
            6 => instant(Phase::Other, format!("e{i}")),
            _ => {}
        }
    }
    while open.pop().is_some() {}
    timepiece_trace::disable();
    take()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn spans_end_after_start_and_parents_enclose_children(
        ops in proptest::collection::vec(0u8..8, 0..96),
    ) {
        let trace = run_workload(&ops);
        for record in &trace.spans {
            prop_assert!(
                record.end_ns() >= record.start_ns,
                "span {} ends before it starts", record.name
            );
            if record.parent == 0 {
                continue;
            }
            let parent = trace
                .spans
                .iter()
                .find(|p| p.id == record.parent)
                .expect("the parent closed before the drain, so it was drained too");
            prop_assert_eq!(parent.kind, SpanKind::Complete, "only spans parent");
            prop_assert_eq!(parent.tid, record.tid, "parent links stay on-thread");
            prop_assert!(
                parent.start_ns <= record.start_ns && record.end_ns() <= parent.end_ns(),
                "parent {} [{}, {}] does not enclose child {} [{}, {}]",
                parent.name, parent.start_ns, parent.end_ns(),
                record.name, record.start_ns, record.end_ns()
            );
        }
    }

    #[test]
    fn open_spans_are_not_drained_and_ids_are_unique(
        ops in proptest::collection::vec(0u8..8, 0..96),
    ) {
        let trace = run_workload(&ops);
        let opens = ops.iter().filter(|&&op| op <= 3).count();
        let closes = ops.iter().filter(|&&op| op == 4 || op == 5).count();
        let instants = ops.iter().filter(|&&op| op == 6).count();
        // every opened span was eventually closed by the final unwind, so
        // the drain sees exactly the opened spans plus the instants
        prop_assert_eq!(trace.spans.len(), opens + instants, "closes = {}", closes);
        let mut ids: Vec<u64> = trace
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Complete)
            .map(|s| s.id)
            .collect();
        ids.sort_unstable();
        let len = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), len, "span ids are unique");
    }
}
