//! The paper's §2 running example, end to end: an idealized cloud provider
//! with a WAN (`w`, `v`), a data center (`d`, `e`) and an untrusted external
//! neighbor (`n`).
//!
//! Run with `cargo run --example cloud_provider`.
//!
//! Walks the narrative of the paper's Key Ideas section:
//!  1. simulate the network (Fig. 3's table);
//!  2. verify the weak tagging interfaces (Fig. 7);
//!  3. verify the timed reachability interfaces (Fig. 8);
//!  4. watch the temporal checker reject the bad interfaces (Fig. 9) that
//!     the unsound stable-state "strawperson" procedure accepts;
//!  5. verify origin tracking with a ghost field (Fig. 10).

use timepiece::core::check::{CheckOptions, ModularChecker};
use timepiece::core::strawperson::check_strawperson;
use timepiece::expr::Env;
use timepiece::nets::example::{RunningExample, EXTERNAL_ROUTE_VAR};
use timepiece::sim::simulate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ex = RunningExample::new();
    let checker = ModularChecker::new(CheckOptions::default());

    // --- Fig. 3: simulation with n silent -------------------------------
    let mut env = Env::new();
    env.bind(EXTERNAL_ROUTE_VAR, ex.no_route());
    let trace = simulate(&ex.network, &env, 16)?;
    println!("Fig. 3 — simulation (n sends ∞):");
    let names = ["n", "w", "v", "d", "e"];
    println!(
        "  {:>4} {:>22} {:>22} {:>22} {:>22} {:>22}",
        "time", names[0], names[1], names[2], names[3], names[4]
    );
    for t in 0..=4 {
        print!("  {t:>4}");
        for v in ex.network.topology().nodes() {
            print!(" {:>22}", trace.state(v, t).to_string());
        }
        println!();
    }
    println!("  converged at t = {:?}\n", trace.converged_at().expect("converges"));

    // --- Fig. 7: weak tagging interfaces --------------------------------
    let report = checker.check(&ex.network, &ex.tagging_interfaces(), &ex.tagging_property())?;
    println!("Fig. 7 — 'if e has a route, it is tagged': verified = {}", report.is_verified());
    assert!(report.is_verified());

    // --- Fig. 8: timed interfaces prove reachability --------------------
    let report =
        checker.check(&ex.network, &ex.reachability_interfaces(), &ex.reachability_property())?;
    println!("Fig. 8 — 'e eventually reaches w':    verified = {}", report.is_verified());
    assert!(report.is_verified());

    // --- Fig. 9 / §2.2: bad interfaces ----------------------------------
    let bad = ex.bad_interfaces(false);
    let strawperson_accepts = check_strawperson(&ex.network, &bad)?.is_empty();
    let report = checker.check(&ex.network, &bad, &ex.tagging_property())?;
    println!(
        "Fig. 9 — spurious lp=200 interfaces: strawperson accepts = {}, Timepiece rejects = {}",
        strawperson_accepts,
        !report.is_verified()
    );
    assert!(strawperson_accepts && !report.is_verified());
    let first = &report.failures()[0];
    println!("  first counterexample ({} condition at {}):", first.vc, first.node_name);
    if let Some(cex) = first.counterexample() {
        for (name, value) in cex.iter() {
            println!("    {name} = {value}");
        }
    }

    // the patched variant (∨ s = ∞) just moves the failure one step in time
    let report = checker.check(&ex.network, &ex.bad_interfaces(true), &ex.tagging_property())?;
    let kinds: Vec<String> = report.failures().iter().map(|f| f.vc.to_string()).collect();
    println!("  patched with '∨ s = ∞': still rejected, failing conditions: {kinds:?}");
    assert!(!report.is_verified());

    // --- Fig. 10: ghost origin bit ---------------------------------------
    let report = checker.check(&ex.network, &ex.ghost_interfaces(), &ex.ghost_property())?;
    println!("Fig. 10 — 'e's route originated at w': verified = {}", report.is_verified());
    assert!(report.is_verified());
    Ok(())
}
