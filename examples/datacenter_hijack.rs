//! Defending a data center against route hijacking (the paper's `Hijack`
//! benchmark, Fig. 14d/h) — with a *symbolic* attacker.
//!
//! Run with `cargo run --release --example datacenter_hijack [k]`.
//!
//! A k-fattree is joined by a hijacker node attached to every core router.
//! The hijacker may announce **any** route at **any** time (its interface is
//! `G(true)`), and the internal destination prefix is itself symbolic, so one
//! modular check covers every concrete attack. Core routers filter hijacker
//! announcements for the internal prefix; the verified property is that every
//! internal router converges to an internally-originated route for it.

use std::time::Duration;

use timepiece::core::check::{CheckOptions, ModularChecker};
use timepiece::nets::hijack::HijackBench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k: usize = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(4);
    println!("building SpHijack on a {k}-fattree + hijacker…");
    let bench = HijackBench::single_dest(k, 0);
    let inst = bench.build();
    println!(
        "  {} nodes, {} edges, symbolic prefix + symbolic hijacker announcement",
        inst.network.topology().node_count(),
        inst.network.topology().edge_count()
    );

    let checker = ModularChecker::new(CheckOptions {
        timeout: Some(Duration::from_secs(60)),
        ..CheckOptions::default()
    });
    let report = checker.check(&inst.network, &inst.interface, &inst.property)?;
    let stats = report.stats();
    println!(
        "verified = {} in {:?} wall ({} node checks, median {:?}, p99 {:?}, max {:?})",
        report.is_verified(),
        report.wall(),
        stats.count,
        stats.median,
        stats.p99,
        stats.max,
    );
    assert!(report.is_verified());

    // all-pairs variant: destination symbolic too
    println!("\nbuilding ApHijack (symbolic destination)…");
    let inst = HijackBench::all_pairs(k).build();
    let report = checker.check(&inst.network, &inst.interface, &inst.property)?;
    println!(
        "verified = {} in {:?} wall (median node check {:?})",
        report.is_verified(),
        report.wall(),
        report.stats().median,
    );
    assert!(report.is_verified());
    Ok(())
}
