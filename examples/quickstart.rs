//! Quickstart: model a tiny network, write temporal interfaces, verify.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The network is a 3-node line `v0 → v1 → v2` running hop-count routing to
//! `v0`. We prove that every node eventually (by its distance from `v0`)
//! holds a route of minimal length, and then show what a counterexample
//! looks like when an interface claims routes arrive too early.

use timepiece::algebra::NetworkBuilder;
use timepiece::core::check::{CheckOptions, ModularChecker};
use timepiece::core::{NodeAnnotations, Temporal};
use timepiece::expr::{Expr, Type};
use timepiece::topology::gen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Topology and routing algebra: routes are Option<Int> hop counts.
    let g = gen::path(3);
    let dest = g.node_by_name("v0").expect("generated node");
    let route_ty = Type::option(Type::Int);

    let network = NetworkBuilder::new(g, route_ty)
        // merge: prefer a present route, then the smaller hop count
        .merge(|a, b| {
            let a_better = a.clone().get_some().le(b.clone().get_some());
            b.clone().is_none().or(a.clone().is_some().and(a_better)).ite(a.clone(), b.clone())
        })
        // transfer: one more hop (∞ stays ∞)
        .default_transfer(|r| {
            r.clone().match_option(Expr::none(Type::Int), |hops| hops.add(Expr::int(1)).some())
        })
        // the destination originates the 0-hop route
        .init(dest, Expr::int(0).some())
        .build()?;

    // 2. Temporal interfaces: node i has no route until time i, then it
    //    holds exactly the i-hop route forever (Fig. 12's `U` operator).
    let interface = NodeAnnotations::from_fn(network.topology(), |v| {
        let i = v.index() as u64;
        if i == 0 {
            Temporal::globally(|r| r.clone().eq(Expr::int(0).some()))
        } else {
            Temporal::until_at(
                i,
                |r| r.clone().is_none(),
                Temporal::globally(move |r| r.clone().eq(Expr::int(i as i64).some())),
            )
        }
    });

    // 3. The property: everyone has a route within 2 steps (the diameter).
    let property = NodeAnnotations::new(
        network.topology(),
        Temporal::finally_at(2, Temporal::globally(|r| r.clone().is_some())),
    );

    // 4. Verify, in parallel, one node at a time.
    let checker = ModularChecker::new(CheckOptions::default());
    let report = checker.check(&network, &interface, &property)?;
    println!("verified: {}", report.is_verified());
    println!(
        "nodes checked: {}, median node time: {:?}, wall: {:?}",
        report.stats().count,
        report.stats().median,
        report.wall()
    );
    assert!(report.is_verified());

    // 5. A buggy interface: claim v2's route arrives at time 1. The checker
    //    rejects it and the counterexample pinpoints node, condition, time.
    let mut buggy = interface.clone();
    let v2 = network.topology().node_by_name("v2").expect("generated node");
    buggy.set(
        v2,
        Temporal::until_at(1, |r| r.clone().is_none(), Temporal::globally(|r| r.clone().is_some())),
    );
    let report = checker.check(&network, &buggy, &property)?;
    assert!(!report.is_verified());
    for failure in report.failures() {
        println!("\n{failure}");
    }
    Ok(())
}
