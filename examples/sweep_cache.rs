//! Cross-row solver-session reuse: fresh checkers vs a persistent pool.
//!
//! Run with `cargo run --release --example sweep_cache`.
//!
//! A multi-`k` sweep checks the *same* policy structure over and over —
//! only the topology grows. The scoped checker rebuilds its Z3 contexts and
//! compiled-term caches for every row; a [`CheckerPool`] keeps them alive,
//! keyed by the network's structural IR signature, so later rows start from
//! warm sessions. This example times both on the `SpLen` family and prints
//! the per-row and total deltas (recorded in `EXPERIMENTS.md`).

use std::time::Instant;

use timepiece::core::check::{CheckOptions, ModularChecker};
use timepiece::core::sweep::CheckerPool;
use timepiece::nets::len::LenBench;

fn main() {
    let ks = [4usize, 6, 8];
    let options = CheckOptions::default();

    println!("{:>3} {:>12} {:>12}", "k", "fresh", "pooled");
    let mut fresh_total = 0.0;
    let mut pooled_total = 0.0;
    let mut pool = CheckerPool::with_default_parallelism(options.clone());
    for k in ks {
        let inst = LenBench::all_pairs(k).build();

        let t0 = Instant::now();
        let fresh = ModularChecker::new(options.clone())
            .check(&inst.network, &inst.interface, &inst.property)
            .expect("encodes");
        let fresh_secs = t0.elapsed().as_secs_f64();
        assert!(fresh.is_verified());

        let t0 = Instant::now();
        let pooled = pool.check(&inst.network, &inst.interface, &inst.property).expect("encodes");
        let pooled_secs = t0.elapsed().as_secs_f64();
        assert!(pooled.is_verified());

        fresh_total += fresh_secs;
        pooled_total += pooled_secs;
        println!("{k:>3} {fresh_secs:>11.2}s {pooled_secs:>11.2}s");
    }
    println!("sum {fresh_total:>11.2}s {pooled_total:>11.2}s");
    println!(
        "(pooled rows reuse sessions opened by earlier rows: same IR signature {:?})",
        LenBench::all_pairs(4).network().encoder_signature()
    );
}
