//! Verifying the `BlockToExternal` isolation invariant on the synthetic
//! Internet2 wide-area network (§6 of the paper).
//!
//! Run with `cargo run --release --example wan_isolation [peers]`.
//!
//! Ten backbone routers start with *arbitrary symbolic* routes; 253
//! classified external peers import with class-based preferences; exports to
//! peers must strip routes carrying the BTE ("block to external") community.
//! The property — no external peer ever holds a BTE-tagged route — is its own
//! interface, so each of the 263 node checks is tiny and the whole
//! verification parallelizes embarrassingly.

use std::time::Duration;

use timepiece::core::check::{CheckOptions, ModularChecker};
use timepiece::core::monolithic::check_monolithic;
use timepiece::nets::wan::WanBench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let peers: usize = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(253);
    println!("building synthetic Internet2 with {peers} external peers…");
    let bench = WanBench::with_peers(7, peers);
    let inst = bench.build();
    println!(
        "  {} nodes, {} directed edges, ~{} synthetic policy terms",
        inst.network.topology().node_count(),
        inst.network.topology().edge_count(),
        bench.policy_term_count(),
    );

    let checker = ModularChecker::new(CheckOptions {
        timeout: Some(Duration::from_secs(60)),
        ..CheckOptions::default()
    });
    let report = checker.check(&inst.network, &inst.interface, &inst.property)?;
    let stats = report.stats();
    println!(
        "modular:    verified = {} in {:?} wall (median {:?}, p99 {:?})",
        report.is_verified(),
        report.wall(),
        stats.median,
        stats.p99,
    );
    assert!(report.is_verified());

    // compare with the monolithic stable-state encoding (give it a bounded
    // budget: on the full network it is expected to struggle)
    let timeout = Duration::from_secs(30);
    let mono = check_monolithic(&inst.network, &inst.property, Some(timeout))?;
    println!(
        "monolithic: outcome = {:?} in {:?} (timeout {:?})",
        match &mono.outcome {
            o if o.is_verified() => "verified".to_owned(),
            other => format!("{other:?}").chars().take(24).collect(),
        },
        mono.wall,
        timeout,
    );
    Ok(())
}
