//! Offline shim for [`criterion`](https://crates.io/crates/criterion).
//!
//! A minimal wall-clock timing harness exposing the API subset this
//! workspace's benches use (`benchmark_group`, `sample_size`,
//! `measurement_time`, `bench_function`, `iter`, and the `criterion_group!`
//! / `criterion_main!` macros). It reports min/mean per benchmark to stdout;
//! there is no statistical analysis, warm-up modelling, or HTML report.
//!
//! To keep `cargo bench` tractable on heavyweight bodies, a benchmark stops
//! sampling once it exceeds either `sample_size` iterations or half the
//! group's `measurement_time`, whichever comes first.

use std::time::{Duration, Instant};

/// The top-level harness handle passed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Soft wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the body to time.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            max_samples: self.sample_size,
            budget: self.measurement_time / 2,
        };
        f(&mut bencher);
        let n = bencher.samples.len().max(1);
        let total: Duration = bencher.samples.iter().sum();
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        println!(
            "  {}/{name}: {} samples, mean {:.3?}, min {:.3?}",
            self.name,
            bencher.samples.len(),
            total / n as u32,
            min,
        );
        self
    }

    /// Ends the group (drop would do; kept for criterion API parity).
    pub fn finish(self) {}
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    max_samples: usize,
    budget: Duration,
}

impl Bencher {
    /// Repeatedly times `body`, recording one sample per call, until the
    /// sample target or time budget is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let started = Instant::now();
        loop {
            let t = Instant::now();
            let out = body();
            self.samples.push(t.elapsed());
            std::hint::black_box(&out);
            drop(out);
            if self.samples.len() >= self.max_samples || started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// Bundles benchmark functions into a single runner fn (criterion parity).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups (criterion parity).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0usize;
        group.sample_size(3).measurement_time(Duration::from_secs(1));
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!((1..=3).contains(&runs), "ran {runs} times");
    }
}
