//! Offline shim for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync::Mutex` behind parking_lot's infallible API: `lock()`
//! returns the guard directly. Like real parking_lot, there is no poisoning —
//! if a thread panicked while holding the lock, later lockers just see the
//! value as it was left (`into_inner` on the poison error).

use std::sync::{Mutex as StdMutex, MutexGuard};

/// A mutual-exclusion primitive with parking_lot's `lock() -> Guard` shape.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, blocking the calling thread until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 800);
    }
}
