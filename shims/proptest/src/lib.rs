//! Offline shim for [`proptest`](https://crates.io/crates/proptest).
//!
//! A deterministic mini property-testing framework covering the subset this
//! workspace uses: range/tuple/`Just`/`any` strategies, `prop_map` /
//! `prop_flat_map`, `collection::vec`, `option::of`, `sample::Index`, the
//! [`proptest!`] macro and `prop_assert!`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs
//!   (strategies' `Debug` output) instead of a minimized one.
//! * **Fully deterministic.** Every test's RNG stream is a pure function of
//!   `ProptestConfig::rng_seed` and the test's name, so CI runs are
//!   reproducible by construction (no `proptest-regressions` files needed).

use std::fmt::Debug;
use std::ops::Range;

/// The per-test configuration, set via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Base seed; combined with the test name to derive each test's stream.
    pub rng_seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, rng_seed: 0x7e57_5eed }
    }
}

/// The deterministic RNG driving all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG whose stream is a pure function of `(seed, name)`.
    pub fn deterministic(seed: u64, name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 pseudorandom bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f`.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // every integer type used here fits losslessly in i128
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The canonical strategy of an [`Arbitrary`] type.
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Element-count specification for [`vec()`]: an exact count or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    /// See [`vec()`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    #[derive(Debug)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // ~25% None: enough absent values to exercise both arms without
            // starving the Some-side logic of cases.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// A strategy for `Option<V>` given a strategy for `V`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An opaque index into collections whose size is only known inside the
    /// test body; resolve with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// This index resolved against a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
    pub use crate::{Arbitrary, Just, ProptestConfig, Strategy, TestRng};
}

/// Asserts a condition inside a property (plain `assert!` here: the shim
/// reports failures by panic, without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng =
                    $crate::TestRng::deterministic(config.rng_seed, stringify!($name));
                let strategy = ($($strat,)+);
                for _case in 0..config.cases {
                    let ($($pat,)+) = $crate::Strategy::sample(&strategy, &mut rng);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic(1, "x");
        let mut b = TestRng::deterministic(1, "x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic(1, "y");
        assert_ne!(TestRng::deterministic(1, "x").next_u64(), c.next_u64());
    }

    #[test]
    fn strategies_compose() {
        let mut rng = TestRng::deterministic(0, "compose");
        let s = (0usize..5)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0u8..10, n)))
            .prop_map(|(n, v)| (n, v.len()));
        for _ in 0..50 {
            let (n, len) = s.sample(&mut rng);
            assert_eq!(n, len);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// the macro wires config, strategies and bodies together
        #[test]
        fn macro_smoke(x in 1usize..10, flag in any::<bool>(), idx in any::<prop::sample::Index>()) {
            prop_assert!((1..10).contains(&x));
            if flag {
                prop_assert!(idx.index(x) < x);
            } else {
                prop_assert!(idx.index(1) == 0);
            }
        }
    }
}
