//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! Provides `StdRng` (xoshiro256**, seeded via splitmix64), `SeedableRng`,
//! the `RngExt` sampling extension (`random_range`, `random_bool`) and
//! `seq::IndexedRandom::choose` — the exact subset this workspace uses. All
//! output is deterministic per seed, which the topology generators and the
//! bounded-delay simulator rely on for reproducibility.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 pseudorandom bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Standard RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard RNG: xoshiro256** with splitmix64 seeding.
    /// Deterministic per seed; not cryptographically secure (neither caller
    /// needs that).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

/// A range that knows how to sample a uniform value from an RNG.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Uniformly samples from the range. Panics on empty ranges.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free-enough uniform sampling in `[0, n)` (n > 0) via the
/// widening-multiply trick; bias is < 2⁻⁶⁴ per draw, irrelevant here.
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + below(rng, span) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Sampling conveniences on any RNG (the rand 0.9 `Rng` surface this
/// workspace uses, under the extension-trait name it imports).
pub trait RngExt: RngCore {
    /// A uniform sample from `range`.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // compare against a 53-bit uniform in [0, 1)
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Sequence-related sampling.
pub mod seq {
    use super::{below, RngCore};

    /// Random element selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Item;
        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::IndexedRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(0usize..=4);
            assert!(y <= 4);
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(2);
        let items = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
