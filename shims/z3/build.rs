fn main() {
    // Link the system-installed libz3 (headers in /usr/include, library on
    // the default search path). No probing: the workspace targets containers
    // and CI images that bake libz3 in; a missing library fails at link time
    // with a clear "cannot find -lz3" message.
    println!("cargo:rustc-link-lib=dylib=z3");
}
