//! AST term wrappers: [`Bool`], [`Int`], [`BV`].
//!
//! Every term holds the raw context pointer of the thread that created it
//! (making the types `!Send`), and owns one Z3 reference which is released
//! on drop.

use std::borrow::Borrow;
use std::ffi::CStr;
use std::fmt;

use crate::cstring;
use crate::ctx;
use crate::ffi::*;

/// Common interface of Z3 term wrappers, used by
/// [`Model::eval`](crate::Model::eval) and [`Bool::ite`].
pub trait Ast: Sized {
    /// The raw Z3 ast pointer.
    fn raw(&self) -> Z3_ast;
    /// Wraps a raw ast, taking a new reference on it.
    ///
    /// # Safety
    ///
    /// `ast` must be a live ast of the matching sort on context `c`, owned by
    /// the calling thread.
    unsafe fn wrap(c: Z3_context, ast: Z3_ast) -> Self;
}

macro_rules! ast_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        pub struct $name {
            pub(crate) ctx: Z3_context,
            pub(crate) ast: Z3_ast,
        }

        impl Ast for $name {
            fn raw(&self) -> Z3_ast {
                self.ast
            }

            unsafe fn wrap(c: Z3_context, ast: Z3_ast) -> Self {
                // With the silent error handler installed, libz3 signals
                // errors (sort mismatch, allocation failure) by returning
                // NULL; fail loudly here rather than hand Z3 a null later.
                assert!(!ast.is_null(), "libz3 returned NULL building a {}", stringify!($name));
                Z3_inc_ref(c, ast);
                $name { ctx: c, ast }
            }
        }

        impl Clone for $name {
            fn clone(&self) -> Self {
                unsafe { <$name as Ast>::wrap(self.ctx, self.ast) }
            }
        }

        impl Drop for $name {
            fn drop(&mut self) {
                unsafe { Z3_dec_ref(self.ctx, self.ast) }
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let s = unsafe {
                    let p = Z3_ast_to_string(self.ctx, self.ast);
                    if p.is_null() {
                        "<null>".to_owned()
                    } else {
                        CStr::from_ptr(p).to_string_lossy().into_owned()
                    }
                };
                write!(f, "{}({s})", stringify!($name))
            }
        }

        impl $name {
            /// Structural equality term between two values of this sort.
            pub fn eq(&self, other: impl Borrow<$name>) -> Bool {
                unsafe {
                    let c = self.ctx;
                    Bool::wrap(c, Z3_mk_eq(c, self.ast, other.borrow().ast))
                }
            }
        }
    };
}

ast_type! {
    /// A boolean term.
    Bool
}
ast_type! {
    /// An unbounded integer term.
    Int
}
ast_type! {
    /// A fixed-width bitvector term.
    BV
}

/// Builds a fresh constant of sort `sort` named `name` on the thread context.
fn fresh_const(name: &str, sort: Z3_sort) -> Z3_ast {
    let c = ctx();
    let n = cstring(name);
    unsafe {
        let sym = Z3_mk_string_symbol(c, n.as_ptr());
        Z3_mk_const(c, sym, sort)
    }
}

impl Bool {
    /// Declares a boolean constant.
    pub fn new_const(name: impl AsRef<str>) -> Bool {
        let c = ctx();
        unsafe {
            let sort = Z3_mk_bool_sort(c);
            Bool::wrap(c, fresh_const(name.as_ref(), sort))
        }
    }

    /// The constant `true` or `false`.
    pub fn from_bool(b: bool) -> Bool {
        let c = ctx();
        unsafe { Bool::wrap(c, if b { Z3_mk_true(c) } else { Z3_mk_false(c) }) }
    }

    /// N-ary conjunction (empty: `true`).
    pub fn and(items: &[Bool]) -> Bool {
        if items.is_empty() {
            return Bool::from_bool(true);
        }
        let c = items[0].ctx;
        let raw: Vec<Z3_ast> = items.iter().map(|b| b.ast).collect();
        unsafe { Bool::wrap(c, Z3_mk_and(c, raw.len() as u32, raw.as_ptr())) }
    }

    /// N-ary disjunction (empty: `false`).
    pub fn or(items: &[Bool]) -> Bool {
        if items.is_empty() {
            return Bool::from_bool(false);
        }
        let c = items[0].ctx;
        let raw: Vec<Z3_ast> = items.iter().map(|b| b.ast).collect();
        unsafe { Bool::wrap(c, Z3_mk_or(c, raw.len() as u32, raw.as_ptr())) }
    }

    /// Negation.
    pub fn not(&self) -> Bool {
        unsafe { Bool::wrap(self.ctx, Z3_mk_not(self.ctx, self.ast)) }
    }

    /// Implication `self → other`.
    pub fn implies(&self, other: impl Borrow<Bool>) -> Bool {
        unsafe { Bool::wrap(self.ctx, Z3_mk_implies(self.ctx, self.ast, other.borrow().ast)) }
    }

    /// If-then-else over any term sort.
    pub fn ite<T: Ast>(&self, then: &T, otherwise: &T) -> T {
        unsafe { T::wrap(self.ctx, Z3_mk_ite(self.ctx, self.ast, then.raw(), otherwise.raw())) }
    }

    /// The concrete value, if this term is the literal `true`/`false`.
    pub fn as_bool(&self) -> Option<bool> {
        match unsafe { Z3_get_bool_value(self.ctx, self.ast) } {
            Z3_L_TRUE => Some(true),
            Z3_L_FALSE => Some(false),
            _ => None,
        }
    }
}

impl Int {
    /// Declares an integer constant.
    pub fn new_const(name: impl AsRef<str>) -> Int {
        let c = ctx();
        unsafe {
            let sort = Z3_mk_int_sort(c);
            Int::wrap(c, fresh_const(name.as_ref(), sort))
        }
    }

    /// An integer literal.
    pub fn from_i64(v: i64) -> Int {
        let c = ctx();
        unsafe {
            let sort = Z3_mk_int_sort(c);
            Int::wrap(c, Z3_mk_int64(c, v, sort))
        }
    }

    /// N-ary sum.
    pub fn add(items: &[Int]) -> Int {
        assert!(!items.is_empty(), "Int::add needs at least one operand");
        let c = items[0].ctx;
        let raw: Vec<Z3_ast> = items.iter().map(|b| b.ast).collect();
        unsafe { Int::wrap(c, Z3_mk_add(c, raw.len() as u32, raw.as_ptr())) }
    }

    /// N-ary left-associated subtraction.
    pub fn sub(items: &[Int]) -> Int {
        assert!(!items.is_empty(), "Int::sub needs at least one operand");
        let c = items[0].ctx;
        let raw: Vec<Z3_ast> = items.iter().map(|b| b.ast).collect();
        unsafe { Int::wrap(c, Z3_mk_sub(c, raw.len() as u32, raw.as_ptr())) }
    }

    /// Strictly-less-than term.
    pub fn lt(&self, other: impl Borrow<Int>) -> Bool {
        unsafe { Bool::wrap(self.ctx, Z3_mk_lt(self.ctx, self.ast, other.borrow().ast)) }
    }

    /// Less-than-or-equal term.
    pub fn le(&self, other: impl Borrow<Int>) -> Bool {
        unsafe { Bool::wrap(self.ctx, Z3_mk_le(self.ctx, self.ast, other.borrow().ast)) }
    }

    /// The concrete value, if this term is an integer literal that fits i64.
    pub fn as_i64(&self) -> Option<i64> {
        let mut out: i64 = 0;
        let ok = unsafe { Z3_get_numeral_int64(self.ctx, self.ast, &mut out) };
        ok.then_some(out)
    }
}

impl BV {
    /// Declares a bitvector constant of the given width.
    pub fn new_const(name: impl AsRef<str>, width: u32) -> BV {
        let c = ctx();
        unsafe {
            let sort = Z3_mk_bv_sort(c, width);
            BV::wrap(c, fresh_const(name.as_ref(), sort))
        }
    }

    /// A bitvector literal of the given width.
    pub fn from_u64(v: u64, width: u32) -> BV {
        let c = ctx();
        unsafe {
            let sort = Z3_mk_bv_sort(c, width);
            BV::wrap(c, Z3_mk_unsigned_int64(c, v, sort))
        }
    }

    /// Unsigned less-than term.
    pub fn bvult(&self, other: impl Borrow<BV>) -> Bool {
        unsafe { Bool::wrap(self.ctx, Z3_mk_bvult(self.ctx, self.ast, other.borrow().ast)) }
    }

    /// Unsigned less-than-or-equal term.
    pub fn bvule(&self, other: impl Borrow<BV>) -> Bool {
        unsafe { Bool::wrap(self.ctx, Z3_mk_bvule(self.ctx, self.ast, other.borrow().ast)) }
    }

    /// Wrapping addition.
    pub fn bvadd(&self, other: impl Borrow<BV>) -> BV {
        unsafe { BV::wrap(self.ctx, Z3_mk_bvadd(self.ctx, self.ast, other.borrow().ast)) }
    }

    /// Wrapping subtraction.
    pub fn bvsub(&self, other: impl Borrow<BV>) -> BV {
        unsafe { BV::wrap(self.ctx, Z3_mk_bvsub(self.ctx, self.ast, other.borrow().ast)) }
    }

    /// Bitwise or.
    pub fn bvor(&self, other: impl Borrow<BV>) -> BV {
        unsafe { BV::wrap(self.ctx, Z3_mk_bvor(self.ctx, self.ast, other.borrow().ast)) }
    }

    /// Bitwise and.
    pub fn bvand(&self, other: impl Borrow<BV>) -> BV {
        unsafe { BV::wrap(self.ctx, Z3_mk_bvand(self.ctx, self.ast, other.borrow().ast)) }
    }

    /// Bit extraction: bits `high..=low` as a `(high − low + 1)`-wide vector.
    pub fn extract(&self, high: u32, low: u32) -> BV {
        unsafe { BV::wrap(self.ctx, Z3_mk_extract(self.ctx, high, low, self.ast)) }
    }

    /// The concrete value, if this term is a bitvector literal.
    pub fn as_u64(&self) -> Option<u64> {
        let mut out: u64 = 0;
        let ok = unsafe { Z3_get_numeral_uint64(self.ctx, self.ast, &mut out) };
        ok.then_some(out)
    }
}
