//! Raw C bindings to the subset of the Z3 4.x API this shim uses.
//!
//! Hand-written against `/usr/include/z3_api.h`; all signatures match the
//! `def_API` declarations in that header (`Z3_bool` is C `bool`, `Z3_lbool`
//! is a C `int` enum).

#![allow(non_camel_case_types)]

use std::os::raw::{c_char, c_int, c_uint, c_void};

macro_rules! opaque {
    ($($name:ident),* $(,)?) => {
        $(pub type $name = *mut c_void;)*
    };
}

opaque!(Z3_config, Z3_context, Z3_symbol, Z3_sort, Z3_ast, Z3_solver, Z3_model, Z3_params);

pub type Z3_string = *const c_char;
pub type Z3_lbool = c_int;

pub const Z3_L_FALSE: Z3_lbool = -1;
pub const Z3_L_UNDEF: Z3_lbool = 0;
pub const Z3_L_TRUE: Z3_lbool = 1;

pub type Z3_error_code = c_int;
pub type Z3_error_handler = extern "C" fn(c: Z3_context, e: Z3_error_code);

extern "C" {
    // context lifecycle
    pub fn Z3_mk_config() -> Z3_config;
    pub fn Z3_del_config(c: Z3_config);
    pub fn Z3_mk_context_rc(c: Z3_config) -> Z3_context;
    pub fn Z3_del_context(c: Z3_context);
    pub fn Z3_set_error_handler(c: Z3_context, h: Option<Z3_error_handler>);

    // reference counting (contexts made with Z3_mk_context_rc)
    pub fn Z3_inc_ref(c: Z3_context, a: Z3_ast);
    pub fn Z3_dec_ref(c: Z3_context, a: Z3_ast);

    // sorts and symbols
    pub fn Z3_mk_string_symbol(c: Z3_context, s: Z3_string) -> Z3_symbol;
    pub fn Z3_mk_bool_sort(c: Z3_context) -> Z3_sort;
    pub fn Z3_mk_int_sort(c: Z3_context) -> Z3_sort;
    pub fn Z3_mk_bv_sort(c: Z3_context, sz: c_uint) -> Z3_sort;

    // terms
    pub fn Z3_mk_const(c: Z3_context, s: Z3_symbol, ty: Z3_sort) -> Z3_ast;
    pub fn Z3_mk_true(c: Z3_context) -> Z3_ast;
    pub fn Z3_mk_false(c: Z3_context) -> Z3_ast;
    pub fn Z3_mk_eq(c: Z3_context, l: Z3_ast, r: Z3_ast) -> Z3_ast;
    pub fn Z3_mk_not(c: Z3_context, a: Z3_ast) -> Z3_ast;
    pub fn Z3_mk_ite(c: Z3_context, t1: Z3_ast, t2: Z3_ast, t3: Z3_ast) -> Z3_ast;
    pub fn Z3_mk_and(c: Z3_context, n: c_uint, args: *const Z3_ast) -> Z3_ast;
    pub fn Z3_mk_or(c: Z3_context, n: c_uint, args: *const Z3_ast) -> Z3_ast;
    pub fn Z3_mk_implies(c: Z3_context, t1: Z3_ast, t2: Z3_ast) -> Z3_ast;

    // arithmetic
    pub fn Z3_mk_add(c: Z3_context, n: c_uint, args: *const Z3_ast) -> Z3_ast;
    pub fn Z3_mk_sub(c: Z3_context, n: c_uint, args: *const Z3_ast) -> Z3_ast;
    pub fn Z3_mk_lt(c: Z3_context, t1: Z3_ast, t2: Z3_ast) -> Z3_ast;
    pub fn Z3_mk_le(c: Z3_context, t1: Z3_ast, t2: Z3_ast) -> Z3_ast;
    pub fn Z3_mk_int64(c: Z3_context, v: i64, ty: Z3_sort) -> Z3_ast;
    pub fn Z3_mk_unsigned_int64(c: Z3_context, v: u64, ty: Z3_sort) -> Z3_ast;

    // bitvectors
    pub fn Z3_mk_bvult(c: Z3_context, t1: Z3_ast, t2: Z3_ast) -> Z3_ast;
    pub fn Z3_mk_bvule(c: Z3_context, t1: Z3_ast, t2: Z3_ast) -> Z3_ast;
    pub fn Z3_mk_bvadd(c: Z3_context, t1: Z3_ast, t2: Z3_ast) -> Z3_ast;
    pub fn Z3_mk_bvsub(c: Z3_context, t1: Z3_ast, t2: Z3_ast) -> Z3_ast;
    pub fn Z3_mk_bvor(c: Z3_context, t1: Z3_ast, t2: Z3_ast) -> Z3_ast;
    pub fn Z3_mk_bvand(c: Z3_context, t1: Z3_ast, t2: Z3_ast) -> Z3_ast;
    pub fn Z3_mk_extract(c: Z3_context, high: c_uint, low: c_uint, t1: Z3_ast) -> Z3_ast;

    // inspection
    pub fn Z3_get_bool_value(c: Z3_context, a: Z3_ast) -> Z3_lbool;
    pub fn Z3_get_numeral_uint64(c: Z3_context, v: Z3_ast, u: *mut u64) -> bool;
    pub fn Z3_get_numeral_int64(c: Z3_context, v: Z3_ast, i: *mut i64) -> bool;
    pub fn Z3_ast_to_string(c: Z3_context, a: Z3_ast) -> Z3_string;

    // params
    pub fn Z3_mk_params(c: Z3_context) -> Z3_params;
    pub fn Z3_params_inc_ref(c: Z3_context, p: Z3_params);
    pub fn Z3_params_dec_ref(c: Z3_context, p: Z3_params);
    pub fn Z3_params_set_uint(c: Z3_context, p: Z3_params, k: Z3_symbol, v: c_uint);

    // solver
    pub fn Z3_mk_solver(c: Z3_context) -> Z3_solver;
    pub fn Z3_solver_interrupt(c: Z3_context, s: Z3_solver);
    pub fn Z3_solver_inc_ref(c: Z3_context, s: Z3_solver);
    pub fn Z3_solver_dec_ref(c: Z3_context, s: Z3_solver);
    pub fn Z3_solver_set_params(c: Z3_context, s: Z3_solver, p: Z3_params);
    pub fn Z3_solver_assert(c: Z3_context, s: Z3_solver, a: Z3_ast);
    pub fn Z3_solver_push(c: Z3_context, s: Z3_solver);
    pub fn Z3_solver_pop(c: Z3_context, s: Z3_solver, n: c_uint);
    pub fn Z3_solver_check(c: Z3_context, s: Z3_solver) -> Z3_lbool;
    pub fn Z3_solver_get_model(c: Z3_context, s: Z3_solver) -> Z3_model;
    pub fn Z3_solver_get_reason_unknown(c: Z3_context, s: Z3_solver) -> Z3_string;

    // model
    pub fn Z3_model_inc_ref(c: Z3_context, m: Z3_model);
    pub fn Z3_model_dec_ref(c: Z3_context, m: Z3_model);
    pub fn Z3_model_eval(
        c: Z3_context,
        m: Z3_model,
        t: Z3_ast,
        model_completion: bool,
        v: *mut Z3_ast,
    ) -> bool;
}
