//! Offline shim for the [`z3`](https://crates.io/crates/z3) crate.
//!
//! Implements the thread-local-context flavour of the z3 crate API (0.13+)
//! for exactly the subset this workspace uses, directly over the system
//! `libz3` via hand-written FFI (the private `ffi` module). Each OS thread lazily creates
//! its own `Z3_context`; AST values hold raw context pointers and are
//! therefore `!Send`/`!Sync`, so independent checks on separate threads
//! share no solver state — which is what makes Timepiece's modular checks
//! embarrassingly parallel.
//!
//! The context is destroyed from a thread-local destructor at thread exit;
//! since AST/solver/model values cannot leave their creating thread, all of
//! their `Drop` impls (which dereference the context) run strictly before
//! that destructor.

mod ffi;

pub mod ast;

use std::ffi::CStr;

use ast::Ast;
use ffi::*;

/// A no-op error handler: without one, libz3's default handler aborts the
/// process. Errors instead surface as null/`false` returns, which the safe
/// wrappers turn into `None` (model queries) or a panic (term construction,
/// which is type-correct by construction in this workspace).
extern "C" fn silent_error_handler(_c: Z3_context, _e: Z3_error_code) {}

struct CtxHandle(Z3_context);

impl Drop for CtxHandle {
    fn drop(&mut self) {
        unsafe { Z3_del_context(self.0) }
    }
}

thread_local! {
    static CTX: CtxHandle = unsafe {
        let cfg = Z3_mk_config();
        let ctx = Z3_mk_context_rc(cfg);
        Z3_del_config(cfg);
        Z3_set_error_handler(ctx, Some(silent_error_handler));
        CtxHandle(ctx)
    };
}

/// The calling thread's Z3 context.
pub(crate) fn ctx() -> Z3_context {
    CTX.with(|c| c.0)
}

pub(crate) fn cstring(s: &str) -> std::ffi::CString {
    // interior NULs cannot occur in the identifiers this workspace generates;
    // replace defensively rather than panic.
    std::ffi::CString::new(s.replace('\0', "␀")).expect("NUL-free after replacement")
}

/// The result of a satisfiability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// The assertions are satisfiable.
    Sat,
    /// The assertions are unsatisfiable.
    Unsat,
    /// The solver could not decide (timeout, incompleteness).
    Unknown,
}

/// Solver parameters (currently: `timeout` in milliseconds).
#[derive(Debug)]
pub struct Params {
    ctx: Z3_context,
    raw: Z3_params,
}

impl Params {
    /// Creates an empty parameter set on the thread's context.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Params {
        let ctx = ctx();
        unsafe {
            let raw = Z3_mk_params(ctx);
            Z3_params_inc_ref(ctx, raw);
            Params { ctx, raw }
        }
    }

    /// Sets an unsigned parameter, e.g. `timeout` (milliseconds).
    pub fn set_u32(&mut self, key: &str, value: u32) {
        let k = cstring(key);
        unsafe {
            let sym = Z3_mk_string_symbol(self.ctx, k.as_ptr());
            Z3_params_set_uint(self.ctx, self.raw, sym, value);
        }
    }
}

impl Drop for Params {
    fn drop(&mut self) {
        unsafe { Z3_params_dec_ref(self.ctx, self.raw) }
    }
}

/// An incremental SMT solver on the calling thread's context.
#[derive(Debug)]
pub struct Solver {
    ctx: Z3_context,
    raw: Z3_solver,
}

impl Solver {
    /// Creates a fresh solver on the thread's context.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Solver {
        let ctx = ctx();
        unsafe {
            let raw = Z3_mk_solver(ctx);
            Z3_solver_inc_ref(ctx, raw);
            Solver { ctx, raw }
        }
    }

    /// Applies parameters (e.g. a timeout) to this solver.
    pub fn set_params(&self, params: &Params) {
        unsafe { Z3_solver_set_params(self.ctx, self.raw, params.raw) }
    }

    /// Asserts a boolean term.
    pub fn assert(&self, b: impl std::borrow::Borrow<ast::Bool>) {
        unsafe { Z3_solver_assert(self.ctx, self.raw, b.borrow().raw()) }
    }

    /// Creates a backtracking point: assertions made after `push` are
    /// retracted by the matching [`Solver::pop`].
    pub fn push(&self) {
        unsafe { Z3_solver_push(self.ctx, self.raw) }
    }

    /// Backtracks `n` points created by [`Solver::push`].
    pub fn pop(&self, n: u32) {
        unsafe { Z3_solver_pop(self.ctx, self.raw, n) }
    }

    /// Checks satisfiability of the asserted terms.
    pub fn check(&self) -> SatResult {
        match unsafe { Z3_solver_check(self.ctx, self.raw) } {
            Z3_L_TRUE => SatResult::Sat,
            Z3_L_FALSE => SatResult::Unsat,
            other => {
                debug_assert_eq!(other, Z3_L_UNDEF);
                SatResult::Unknown
            }
        }
    }

    /// The model from the last `Sat` check, if available.
    pub fn get_model(&self) -> Option<Model> {
        let raw = unsafe { Z3_solver_get_model(self.ctx, self.raw) };
        if raw.is_null() {
            return None;
        }
        unsafe { Z3_model_inc_ref(self.ctx, raw) };
        Some(Model { ctx: self.ctx, raw })
    }

    /// Why the last check returned `Unknown`, if the solver says.
    pub fn get_reason_unknown(&self) -> Option<String> {
        unsafe {
            let p = Z3_solver_get_reason_unknown(self.ctx, self.raw);
            if p.is_null() {
                return None;
            }
            Some(CStr::from_ptr(p).to_string_lossy().into_owned())
        }
    }
}

impl Drop for Solver {
    fn drop(&mut self) {
        unsafe { Z3_solver_dec_ref(self.ctx, self.raw) }
    }
}

/// A satisfying assignment produced by [`Solver::get_model`].
#[derive(Debug)]
pub struct Model {
    ctx: Z3_context,
    raw: Z3_model,
}

impl Model {
    /// Evaluates a term under the model. With `model_completion`,
    /// unconstrained subterms get arbitrary (but fixed) values, so the
    /// result is always a constant for the sorts this workspace uses.
    pub fn eval<T: ast::Ast>(&self, t: &T, model_completion: bool) -> Option<T> {
        let mut out: Z3_ast = std::ptr::null_mut();
        let ok = unsafe { Z3_model_eval(self.ctx, self.raw, t.raw(), model_completion, &mut out) };
        if !ok || out.is_null() {
            return None;
        }
        Some(unsafe { T::wrap(self.ctx, out) })
    }
}

impl Drop for Model {
    fn drop(&mut self) {
        unsafe { Z3_model_dec_ref(self.ctx, self.raw) }
    }
}
