//! Offline shim for the [`z3`](https://crates.io/crates/z3) crate.
//!
//! Implements the thread-local-context flavour of the z3 crate API (0.13+)
//! for exactly the subset this workspace uses, directly over the system
//! `libz3` via hand-written FFI (the private `ffi` module). Each OS thread lazily creates
//! its own `Z3_context`; AST values hold raw context pointers and are
//! therefore `!Send`/`!Sync`, so independent checks on separate threads
//! share no solver state — which is what makes Timepiece's modular checks
//! embarrassingly parallel.
//!
//! The context is destroyed from a thread-local destructor at thread exit;
//! since AST/solver/model values cannot leave their creating thread, all of
//! their `Drop` impls (which dereference the context) run strictly before
//! that destructor.

mod ffi;

pub mod ast;

use std::ffi::CStr;

use ast::Ast;
use ffi::*;

/// A no-op error handler: without one, libz3's default handler aborts the
/// process. Errors instead surface as null/`false` returns, which the safe
/// wrappers turn into `None` (model queries) or a panic (term construction,
/// which is type-correct by construction in this workspace).
extern "C" fn silent_error_handler(_c: Z3_context, _e: Z3_error_code) {}

struct CtxHandle(Z3_context);

impl Drop for CtxHandle {
    fn drop(&mut self) {
        unsafe { Z3_del_context(self.0) }
    }
}

thread_local! {
    static CTX: CtxHandle = unsafe {
        let cfg = Z3_mk_config();
        let ctx = Z3_mk_context_rc(cfg);
        Z3_del_config(cfg);
        Z3_set_error_handler(ctx, Some(silent_error_handler));
        CtxHandle(ctx)
    };
}

/// The calling thread's Z3 context.
pub(crate) fn ctx() -> Z3_context {
    CTX.with(|c| c.0)
}

pub(crate) fn cstring(s: &str) -> std::ffi::CString {
    // interior NULs cannot occur in the identifiers this workspace generates;
    // replace defensively rather than panic.
    std::ffi::CString::new(s.replace('\0', "␀")).expect("NUL-free after replacement")
}

/// The result of a satisfiability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// The assertions are satisfiable.
    Sat,
    /// The assertions are unsatisfiable.
    Unsat,
    /// The solver could not decide (timeout, incompleteness).
    Unknown,
}

/// Solver parameters (currently: `timeout` in milliseconds).
#[derive(Debug)]
pub struct Params {
    ctx: Z3_context,
    raw: Z3_params,
}

impl Params {
    /// Creates an empty parameter set on the thread's context.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Params {
        let ctx = ctx();
        unsafe {
            let raw = Z3_mk_params(ctx);
            Z3_params_inc_ref(ctx, raw);
            Params { ctx, raw }
        }
    }

    /// Sets an unsigned parameter, e.g. `timeout` (milliseconds).
    pub fn set_u32(&mut self, key: &str, value: u32) {
        let k = cstring(key);
        unsafe {
            let sym = Z3_mk_string_symbol(self.ctx, k.as_ptr());
            Z3_params_set_uint(self.ctx, self.raw, sym, value);
        }
    }
}

impl Drop for Params {
    fn drop(&mut self) {
        unsafe { Z3_params_dec_ref(self.ctx, self.raw) }
    }
}

/// A thread-safe handle that interrupts a [`Solver`]'s in-flight
/// [`Solver::check`] from *another* thread (`Z3_solver_interrupt` is the one
/// libz3 entry point documented as safe to call concurrently with a running
/// check on the same solver). The interrupted check returns
/// [`SatResult::Unknown`] with reason `"canceled"`.
///
/// The handle stays valid after its solver is dropped: interrupting then is a
/// no-op. The target pointers live behind a mutex that [`Solver`]'s `Drop`
/// clears while holding the lock, so an interrupt can never race the solver's
/// (or its thread-local context's) destruction.
#[derive(Debug, Clone)]
pub struct InterruptHandle {
    target: std::sync::Arc<std::sync::Mutex<Option<(usize, usize)>>>,
}

impl InterruptHandle {
    /// Interrupts the solver's in-flight check, if the solver is still alive.
    pub fn interrupt(&self) {
        let guard = self.target.lock().unwrap_or_else(|p| p.into_inner());
        if let Some((ctx, solver)) = *guard {
            unsafe { Z3_solver_interrupt(ctx as Z3_context, solver as Z3_solver) }
        }
    }
}

/// An incremental SMT solver on the calling thread's context.
#[derive(Debug)]
pub struct Solver {
    ctx: Z3_context,
    raw: Z3_solver,
    interrupt: std::sync::Arc<std::sync::Mutex<Option<(usize, usize)>>>,
}

impl Solver {
    /// Creates a fresh solver on the thread's context.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Solver {
        let ctx = ctx();
        unsafe {
            let raw = Z3_mk_solver(ctx);
            Z3_solver_inc_ref(ctx, raw);
            let interrupt =
                std::sync::Arc::new(std::sync::Mutex::new(Some((ctx as usize, raw as usize))));
            Solver { ctx, raw, interrupt }
        }
    }

    /// A [`Send`]/[`Sync`] handle other threads can use to interrupt this
    /// solver's in-flight [`Solver::check`].
    pub fn interrupt_handle(&self) -> InterruptHandle {
        InterruptHandle { target: std::sync::Arc::clone(&self.interrupt) }
    }

    /// Applies parameters (e.g. a timeout) to this solver.
    pub fn set_params(&self, params: &Params) {
        unsafe { Z3_solver_set_params(self.ctx, self.raw, params.raw) }
    }

    /// Asserts a boolean term.
    pub fn assert(&self, b: impl std::borrow::Borrow<ast::Bool>) {
        unsafe { Z3_solver_assert(self.ctx, self.raw, b.borrow().raw()) }
    }

    /// Creates a backtracking point: assertions made after `push` are
    /// retracted by the matching [`Solver::pop`].
    pub fn push(&self) {
        unsafe { Z3_solver_push(self.ctx, self.raw) }
    }

    /// Backtracks `n` points created by [`Solver::push`].
    pub fn pop(&self, n: u32) {
        unsafe { Z3_solver_pop(self.ctx, self.raw, n) }
    }

    /// Checks satisfiability of the asserted terms.
    pub fn check(&self) -> SatResult {
        match unsafe { Z3_solver_check(self.ctx, self.raw) } {
            Z3_L_TRUE => SatResult::Sat,
            Z3_L_FALSE => SatResult::Unsat,
            other => {
                debug_assert_eq!(other, Z3_L_UNDEF);
                SatResult::Unknown
            }
        }
    }

    /// The model from the last `Sat` check, if available.
    pub fn get_model(&self) -> Option<Model> {
        let raw = unsafe { Z3_solver_get_model(self.ctx, self.raw) };
        if raw.is_null() {
            return None;
        }
        unsafe { Z3_model_inc_ref(self.ctx, raw) };
        Some(Model { ctx: self.ctx, raw })
    }

    /// Why the last check returned `Unknown`, if the solver says.
    pub fn get_reason_unknown(&self) -> Option<String> {
        unsafe {
            let p = Z3_solver_get_reason_unknown(self.ctx, self.raw);
            if p.is_null() {
                return None;
            }
            Some(CStr::from_ptr(p).to_string_lossy().into_owned())
        }
    }
}

impl Drop for Solver {
    fn drop(&mut self) {
        // Disarm outstanding interrupt handles *before* releasing the solver;
        // holding the lock here means an `interrupt()` that already loaded
        // the pointers finishes its libz3 call first.
        *self.interrupt.lock().unwrap_or_else(|p| p.into_inner()) = None;
        unsafe { Z3_solver_dec_ref(self.ctx, self.raw) }
    }
}

/// A satisfying assignment produced by [`Solver::get_model`].
#[derive(Debug)]
pub struct Model {
    ctx: Z3_context,
    raw: Z3_model,
}

impl Model {
    /// Evaluates a term under the model. With `model_completion`,
    /// unconstrained subterms get arbitrary (but fixed) values, so the
    /// result is always a constant for the sorts this workspace uses.
    pub fn eval<T: ast::Ast>(&self, t: &T, model_completion: bool) -> Option<T> {
        let mut out: Z3_ast = std::ptr::null_mut();
        let ok = unsafe { Z3_model_eval(self.ctx, self.raw, t.raw(), model_completion, &mut out) };
        if !ok || out.is_null() {
            return None;
        }
        Some(unsafe { T::wrap(self.ctx, out) })
    }
}

impl Drop for Model {
    fn drop(&mut self) {
        unsafe { Z3_model_dec_ref(self.ctx, self.raw) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ast::Bool;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// Asserts the pigeonhole principle for `pigeons` pigeons in
    /// `pigeons - 1` holes: unsatisfiable, and exponentially hard for CDCL
    /// solvers — a check that reliably outlives any interrupt latency.
    fn assert_pigeonhole(solver: &Solver, pigeons: usize) {
        let holes = pigeons - 1;
        let var = |i: usize, j: usize| Bool::new_const(format!("p{i}h{j}"));
        for i in 0..pigeons {
            let somewhere: Vec<Bool> = (0..holes).map(|j| var(i, j)).collect();
            solver.assert(Bool::or(&somewhere));
        }
        for j in 0..holes {
            for i in 0..pigeons {
                for i2 in i + 1..pigeons {
                    solver.assert(Bool::or(&[var(i, j).not(), var(i2, j).not()]));
                }
            }
        }
    }

    #[test]
    fn interrupt_aborts_inflight_check() {
        let done = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::channel();
        let worker = std::thread::spawn(move || {
            let solver = Solver::new();
            assert_pigeonhole(&solver, 13);
            tx.send(solver.interrupt_handle()).unwrap();
            solver.check()
        });
        // keep interrupting until the worker returns, so the test cannot race
        // a check that had not started when the first interrupt fired
        let handle = rx.recv().unwrap();
        let interrupter = {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    handle.interrupt();
                    std::thread::sleep(Duration::from_millis(50));
                }
            })
        };
        let result = worker.join().unwrap();
        done.store(true, Ordering::Relaxed);
        interrupter.join().unwrap();
        assert_eq!(result, SatResult::Unknown, "interrupt must abort the check");
    }

    #[test]
    fn interrupt_after_drop_is_noop() {
        let solver = Solver::new();
        let handle = solver.interrupt_handle();
        solver.assert(Bool::from_bool(true));
        drop(solver);
        handle.interrupt();
        handle.interrupt();
    }

    #[test]
    fn interrupted_solver_stays_usable() {
        let solver = Solver::new();
        solver.push();
        solver.assert(Bool::from_bool(false));
        assert_eq!(solver.check(), SatResult::Unsat);
        solver.pop(1);
        // an interrupt with no in-flight check is absorbed harmlessly
        solver.interrupt_handle().interrupt();
        solver.assert(Bool::from_bool(true));
        assert!(matches!(solver.check(), SatResult::Sat | SatResult::Unknown));
    }
}
