//! # Timepiece (Rust reproduction)
//!
//! Modular control plane verification via temporal invariants — a Rust
//! reproduction of the PLDI 2023 paper by Alberdingk Thijm, Beckett, Gupta and
//! Walker.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`expr`] — the typed expression IR used to model routes and policies.
//! * [`smt`] — the Z3 backend: validity checking and counterexamples.
//! * [`topology`] — network graphs and generators (fattrees, WANs, …).
//! * [`algebra`] — routing algebras (S, I, F, ⊕) and standard instances.
//! * [`sim`] — synchronous and bounded-delay network simulators.
//! * [`sched`] — verification scheduling: work-stealing execution,
//!   cooperative cancellation with solver interrupts, and deterministic
//!   shard planning for multi-process runs.
//! * [`core`] — temporal invariants, verification conditions, the modular
//!   checker, and the monolithic (Minesweeper-style) baseline.
//! * [`infer`] — simulation-guided inference of temporal interfaces with
//!   counterexample-guided (CEGIS-style) repair.
//! * [`nets`] — the paper's benchmark networks and the §2 running example.
//!
//! # Quickstart
//!
//! Verify that every node of a small fattree eventually obtains a route to a
//! destination (the paper's `SpReach` benchmark):
//!
//! ```
//! use timepiece::nets::reach::ReachBench;
//! use timepiece::core::check::{CheckOptions, ModularChecker};
//!
//! let bench = ReachBench::single_dest(4, 0); // k=4 fattree, dest = first edge node
//! let inst = bench.build();
//! let report = ModularChecker::new(CheckOptions::default())
//!     .check(&inst.network, &inst.interface, &inst.property)
//!     .expect("verification should run");
//! assert!(report.is_verified());
//! ```

pub use timepiece_algebra as algebra;
pub use timepiece_core as core;
pub use timepiece_expr as expr;
pub use timepiece_infer as infer;
pub use timepiece_nets as nets;
pub use timepiece_sched as sched;
pub use timepiece_sim as sim;
pub use timepiece_smt as smt;
pub use timepiece_topology as topology;
