//! Cross-crate integration tests: every paper benchmark at k = 4, through
//! the public facade, on both engines, with failure injection.

use std::time::Duration;

use timepiece::core::check::{CheckOptions, ModularChecker};
use timepiece::core::monolithic::check_monolithic;
use timepiece::core::{NodeAnnotations, Temporal};
use timepiece::nets::{
    hijack::HijackBench, len::LenBench, reach::ReachBench, vf::VfBench, wan::WanBench,
    BenchInstance,
};

fn modular(inst: &BenchInstance) -> timepiece::core::CheckReport {
    ModularChecker::new(CheckOptions::default())
        .check(&inst.network, &inst.interface, &inst.property)
        .expect("check runs")
}

#[test]
fn all_single_dest_benchmarks_verify_at_k4() {
    for (name, inst) in [
        ("SpReach", ReachBench::single_dest(4, 0).build()),
        ("SpLen", LenBench::single_dest(4, 0).build()),
        ("SpVf", VfBench::single_dest(4, 0).build()),
        ("SpHijack", HijackBench::single_dest(4, 0).build()),
    ] {
        let report = modular(&inst);
        assert!(report.is_verified(), "{name} failed: {:?}", report.failures());
    }
}

#[test]
fn all_pairs_benchmarks_verify_at_k4() {
    for (name, inst) in [
        ("ApReach", ReachBench::all_pairs(4).build()),
        ("ApLen", LenBench::all_pairs(4).build()),
        ("ApVf", VfBench::all_pairs(4).build()),
        ("ApHijack", HijackBench::all_pairs(4).build()),
    ] {
        let report = modular(&inst);
        assert!(report.is_verified(), "{name} failed: {:?}", report.failures());
    }
}

#[test]
fn every_edge_node_can_be_the_destination() {
    // Sp instances parameterized over each of the 8 edge nodes of a 4-fattree
    for i in 0..8 {
        let inst = ReachBench::single_dest(4, i).build();
        let report = modular(&inst);
        assert!(report.is_verified(), "dest {i}: {:?}", report.failures());
    }
}

#[test]
fn monolithic_and_modular_agree_on_sp_reach() {
    let inst = ReachBench::single_dest(4, 0).build();
    assert!(modular(&inst).is_verified());
    let mono = check_monolithic(&inst.network, &inst.property, None).expect("check runs");
    assert!(mono.outcome.is_verified());
}

#[test]
fn monolithic_rejects_a_false_property() {
    // claim: every node's stable route has length 0 — only the destination's
    // does, so the monolithic stable-state check must find a counterexample
    let inst = LenBench::single_dest(4, 0).build();
    let schema = timepiece::nets::bgp::BgpSchema::new([], []);
    let false_property = NodeAnnotations::new(
        inst.network.topology(),
        Temporal::globally(move |r| {
            r.clone()
                .is_some()
                .and(schema.len(&r.clone().get_some()).eq(timepiece::expr::Expr::int(0)))
        }),
    );
    let mono = check_monolithic(&inst.network, &false_property, None).expect("check runs");
    assert!(!mono.outcome.is_verified());
}

#[test]
fn per_node_timing_statistics_are_recorded() {
    let inst = ReachBench::single_dest(4, 0).build();
    let report = modular(&inst);
    let stats = report.stats();
    assert_eq!(stats.count, inst.network.topology().node_count());
    assert!(stats.median <= stats.p99);
    assert!(stats.p99 <= stats.max);
    assert!(stats.total >= stats.max);
}

#[test]
fn solver_timeouts_surface_as_unknown_failures() {
    // a 1-nanosecond budget forces Unknown on at least some node
    let inst = VfBench::all_pairs(4).build();
    let report = ModularChecker::new(CheckOptions {
        timeout: Some(Duration::from_nanos(1)),
        ..CheckOptions::default()
    })
    .check(&inst.network, &inst.interface, &inst.property)
    .expect("check runs");
    assert!(!report.is_verified());
}

#[test]
fn wan_block_to_external_verifies_and_scales_down() {
    for peers in [4usize, 16] {
        let inst = WanBench::with_peers(9, peers).build();
        let report = modular(&inst);
        assert!(report.is_verified(), "peers={peers}: {:?}", report.failures());
        assert_eq!(report.stats().count, 10 + peers);
    }
}

#[test]
fn delay_tolerant_interfaces_for_reach() {
    // Reach's F-interfaces are not exact-time, so they tolerate one unit of
    // bounded delay (§4): presence only ever grows
    let inst = ReachBench::single_dest(4, 0).build();
    let report = ModularChecker::new(CheckOptions { delay: 1, ..CheckOptions::default() })
        .check(&inst.network, &inst.interface, &inst.property)
        .expect("check runs");
    // with delay, routes may arrive LATER than dist(v), so the exact-dist
    // interfaces need not hold — but they may; what must never happen is an
    // encoding error. Accept either verdict, require decodable failures.
    for f in report.failures() {
        assert!(
            f.counterexample().is_some()
                || matches!(&f.reason, timepiece::core::check::FailureReason::Unknown(_))
        );
    }
}

#[test]
fn vf_simulation_and_verifier_agree_on_all_destinations() {
    use timepiece::expr::Env;
    // for each destination, the verified Vf instance simulates to exactly
    // dist-length routes — verifier and simulator tell one story
    for i in [0usize, 3, 7] {
        let bench = VfBench::single_dest(4, i);
        let inst = bench.build();
        assert!(modular(&inst).is_verified());
        let trace = timepiece::sim::simulate(&inst.network, &Env::new(), 16).expect("simulates");
        assert!(trace.converged_at().is_some());
    }
}
