//! Smoke test for the non-test build surface.
//!
//! `cargo test` never compiles examples, benches, or binaries on its own, so
//! they can silently rot. This test drives a real `cargo build --examples
//! --benches --bins` over the workspace (sharing the target directory, so it
//! is cheap when nothing changed) and fails if any of them stop compiling.

use std::path::Path;
use std::process::Command;

#[test]
fn examples_benches_and_bins_build() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let output = Command::new(cargo)
        .current_dir(manifest_dir)
        .args(["build", "--workspace", "--examples", "--benches", "--bins", "--offline", "--quiet"])
        .output()
        .expect("cargo is runnable from a test");
    assert!(
        output.status.success(),
        "cargo build --examples --benches --bins failed:\n{}",
        String::from_utf8_lossy(&output.stderr),
    );
}
