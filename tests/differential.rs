//! Differential testing of the two backends: the reference interpreter and
//! the Z3 compiler must assign every term the same meaning.
//!
//! Strategy: generate random concrete BGP routes, build rich terms over them
//! (merge chains, transfers, temporal-operator instantiations), and check
//! that the interpreter's verdict matches Z3's — by asking the solver to
//! prove the term equal to its interpreted value under the same bindings.

use proptest::prelude::*;
use timepiece::core::Temporal;
use timepiece::expr::{Env, Expr, Value};
use timepiece::nets::bgp::BgpSchema;
use timepiece::smt::{check_validity, Validity, Vc};

/// Z3 agrees that `term = value` whenever the interpreter says so, under the
/// bindings of `env`.
fn backends_agree(term: &Expr, env: &Env) -> bool {
    let interpreted = term.eval(env).expect("term evaluates");
    let mut assumptions: Vec<Expr> = Vec::new();
    for (name, value) in env.iter() {
        let var = Expr::var(name, value.type_of());
        assumptions.push(var.eq(Expr::constant(value.clone())));
    }
    let goal = term.clone().eq(Expr::constant(interpreted));
    match check_validity(&Vc::new("differential", assumptions, goal), None).expect("term encodes") {
        Validity::Valid => true,
        other => panic!("backends disagree on {term}: {other:?}"),
    }
}

fn arb_route(schema: &BgpSchema) -> impl Strategy<Value = Value> {
    let def = schema.record_def().clone();
    let comm_def = def.field_type("comms").unwrap().set_def().unwrap().clone();
    let origin_def = def.field_type("origin").unwrap().enum_def().unwrap().clone();
    proptest::option::of((0u64..4, 0u64..300, 0i64..6, 0u8..4, 0usize..3)).prop_map(move |fields| {
        match fields {
            None => Value::default_of(&Type::option_of(&def)),
            Some((dest, lp, len, comms, origin)) => Value::some(Value::record(
                &def,
                vec![
                    Value::bv(dest, 32),
                    Value::bv(20, 32),
                    Value::bv(lp, 32),
                    Value::bv(0, 32),
                    Value::Enum { def: origin_def.clone(), index: origin },
                    Value::int(len),
                    Value::Set { def: comm_def.clone(), mask: u64::from(comms) },
                ],
            )),
        }
    })
}

/// tiny helper: the option-of-record type for `Value::default_of`.
struct Type;
impl Type {
    fn option_of(def: &std::sync::Arc<timepiece::expr::RecordDef>) -> timepiece::expr::Type {
        timepiece::expr::Type::option(timepiece::expr::Type::Record(def.clone()))
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// merge chains evaluate identically in both backends
    #[test]
    fn merge_chains_agree(
        ra in arb_route(&BgpSchema::new(["down", "bte"], [])),
        rb in arb_route(&BgpSchema::new(["down", "bte"], [])),
        rc in arb_route(&BgpSchema::new(["down", "bte"], [])),
    ) {
        let schema = BgpSchema::new(["down", "bte"], []);
        let a = schema.route_var("a");
        let b = schema.route_var("b");
        let c = schema.route_var("c");
        let merged = schema.merge(&schema.merge(&a, &b), &c);
        let mut env = Env::new();
        env.bind("a", ra);
        env.bind("b", rb);
        env.bind("c", rc);
        prop_assert!(backends_agree(&merged, &env));
    }

    /// transfer (length increment + tagging) agrees in both backends
    #[test]
    fn transfers_agree(r in arb_route(&BgpSchema::new(["down", "bte"], []))) {
        let schema = BgpSchema::new(["down", "bte"], []);
        let v = schema.route_var("r");
        let payload_ty = schema.route_type().option_payload().unwrap().clone();
        let transferred = schema.transfer_increment(&v).match_option(
            Expr::none(payload_ty),
            |route| {
                let comms = route.clone().field("comms").add_tag("down");
                route.with_field("comms", comms).some()
            },
        );
        let mut env = Env::new();
        env.bind("r", r);
        prop_assert!(backends_agree(&transferred, &env));
    }

    /// temporal operator instantiations agree in both backends
    #[test]
    fn temporal_instantiations_agree(
        r in arb_route(&BgpSchema::new(["down", "bte"], [])),
        t in 0i64..8,
        tau in 0u64..6,
    ) {
        let schema = BgpSchema::new(["down", "bte"], []);
        let op = Temporal::until_at(
            tau,
            |route| route.clone().is_none(),
            Temporal::globally({
                let schema = schema.clone();
                move |route| {
                    route.clone().is_some().and(
                        schema.len(&route.clone().get_some()).le(Expr::int(5)),
                    )
                }
            }),
        );
        let instantiated = op.at(
            &Expr::var("t", timepiece::expr::Type::Int),
            &schema.route_var("r"),
        );
        let mut env = Env::new();
        env.bind("r", r);
        env.bind("t", Value::int(t));
        prop_assert!(backends_agree(&instantiated, &env));
    }
}
