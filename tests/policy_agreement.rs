//! Sim-vs-SMT agreement for the declarative policy IR.
//!
//! One `RoutePolicy`/`RouteSchema` definition has two consumers: the
//! simulator executes its value semantics directly, the verifier compiles
//! it to terms for Z3. These tests pin the two together from both ends:
//!
//! * **random routes** — for every benchmark policy, applying the policy to
//!   a random concrete route must equal (a) interpreting the compiled term
//!   and (b) what Z3 proves the compiled term equals;
//! * **whole traces** — simulating a policy-built network via the fast
//!   value path must reproduce the term-interpretation trace exactly.

use rand::{rngs::StdRng, RngExt, SeedableRng};
use timepiece::algebra::{NetworkPolicies, RoutePolicy, RouteSchema};
use timepiece::expr::{Env, Expr, Value};
use timepiece::smt::{check_validity, Vc};

/// A random concrete route of a schema (present with probability ~3/4).
fn random_route(schema: &RouteSchema, rng: &mut StdRng) -> Value {
    if rng.random_range(0..4u32) == 0 {
        return schema.none_value();
    }
    let fields: Vec<Value> =
        schema.record_def().fields().iter().map(|(_, ty)| random_value(ty, rng)).collect();
    Value::some(Value::record(schema.record_def(), fields))
}

fn random_value(ty: &timepiece::expr::Type, rng: &mut StdRng) -> Value {
    use timepiece::expr::Type;
    match ty {
        Type::Bool => Value::Bool(rng.random_range(0..2u32) == 0),
        Type::BitVec(w) => Value::bv(rng.random_range(0..200u64), *w),
        Type::Int => Value::int(rng.random_range(0..9u32) as i64),
        Type::Enum(def) => {
            let i = rng.random_range(0..def.variants().len() as u64) as usize;
            Value::enum_variant(def, &def.variants()[i].clone())
        }
        Type::Set(def) => {
            let tags: Vec<&str> = def
                .universe()
                .iter()
                .filter(|_| rng.random_range(0..2u32) == 0)
                .map(String::as_str)
                .collect();
            Value::set_of(def, tags)
        }
        other => Value::default_of(other),
    }
}

/// A closing environment for every symbolic the policies may reference.
fn closing_env(policies: &NetworkPolicies, net: &timepiece::algebra::Network) -> Env {
    let mut env = Env::new();
    for s in net.symbolics() {
        env.bind(s.name(), Value::default_of(s.ty()));
    }
    if let Some(model) = &policies.failures {
        model.bind_failures(net.topology(), &mut env, &[]);
    }
    env
}

/// For every distinct policy of a network: interpret-compiled, apply-direct
/// and Z3-proved results agree on random routes.
fn assert_policy_agreement(
    net: &timepiece::algebra::Network,
    rng: &mut StdRng,
    solver_cases: usize,
) {
    let policies = net.policies().expect("benchmark networks carry the policy IR");
    let schema = &policies.schema;
    let env = closing_env(policies, net);

    let mut distinct: Vec<&RoutePolicy> = policies.edge_policies.values().collect();
    distinct.extend(policies.default_policy.as_ref());
    distinct.sort_by_key(|p| p.structural_hash());
    distinct.dedup_by_key(|p| p.structural_hash());

    for policy in distinct {
        let var = Expr::var("r", schema.route_type());
        let compiled = policy.compile(schema, &var);
        for case in 0..24 {
            let route = random_route(schema, rng);
            let mut bound = env.clone();
            bound.bind("r", route.clone());
            let via_term = compiled.eval(&bound).expect("compiled policy evaluates");
            let via_value = policy.apply(schema, &route, &env).expect("policy applies");
            assert_eq!(via_term, via_value, "policy {policy:?} on {route}");
            // and the SMT backend proves the same result: under the binding
            // assumptions, `compiled = result` is valid
            if case < solver_cases {
                let assumptions: Vec<Expr> = bound
                    .iter()
                    .map(|(name, value)| {
                        Expr::var(name, value.type_of()).eq(Expr::constant(value.clone()))
                    })
                    .collect();
                let goal = compiled.clone().eq(Expr::constant(via_value.clone()));
                let vc = Vc::new("policy-agreement", assumptions, goal);
                assert!(
                    check_validity(&vc, None).expect("encodes").is_valid(),
                    "Z3 disagrees with the concrete semantics: {policy:?} on {route}"
                );
            }
        }
    }
}

#[test]
fn every_benchmark_policy_agrees_across_backends() {
    use timepiece::nets::{
        ad::AdBench, fail::FailBench, hijack::HijackBench, len::LenBench, med::MedBench,
        reach::ReachBench, vf::VfBench, wan::WanBench,
    };
    let mut rng = StdRng::seed_from_u64(0x000a_94ee);
    let networks = [
        ("SpReach", ReachBench::single_dest(4, 0).network()),
        ("SpLen", LenBench::single_dest(4, 0).network()),
        ("SpVf", VfBench::single_dest(4, 0).network()),
        ("SpHijack", HijackBench::single_dest(4, 0).network()),
        ("SpMed", MedBench::single_dest(4, 0).network()),
        ("SpAd", AdBench::single_dest(4, 0).network()),
        ("SpFail", FailBench::single_dest(4, 0).network()),
        ("Wan", WanBench::with_peers(3, 4).network()),
    ];
    for (name, net) in &networks {
        assert!(net.policies().is_some(), "{name} must build through the policy IR");
        assert_policy_agreement(net, &mut rng, 3);
    }
}

#[test]
fn merge_agrees_across_backends_on_random_routes() {
    use timepiece::nets::hijack::HijackBench;
    // the hijack schema has the richest merge (GuardFirst + full decision
    // process); random pairs must merge identically in both semantics
    let net = HijackBench::single_dest(4, 0).network();
    let policies = net.policies().unwrap();
    let schema = &policies.schema;
    let env = closing_env(policies, &net);
    let mut rng = StdRng::seed_from_u64(0x0003_e69e);
    let (va, vb) = (Expr::var("a", schema.route_type()), Expr::var("b", schema.route_type()));
    let compiled = schema.merge_expr(&va, &vb);
    for _ in 0..64 {
        let a = random_route(schema, &mut rng);
        let b = random_route(schema, &mut rng);
        let mut bound = env.clone();
        bound.bind("a", a.clone());
        bound.bind("b", b.clone());
        let via_term = compiled.eval(&bound).unwrap();
        let via_value = schema.merge_value(&a, &b, &env).unwrap();
        assert_eq!(via_term, via_value, "merge({a}, {b})");
    }
}

#[test]
fn fast_path_and_interpreted_traces_coincide() {
    use timepiece::nets::{med::MedBench, vf::VfBench};
    use timepiece::sim::{simulate, simulate_interpreted};
    for (name, net) in [
        ("SpVf", VfBench::single_dest(4, 0).network()),
        ("ApMed", MedBench::all_pairs(4).network()),
    ] {
        let mut env = Env::new();
        // close the symbolic destination (ApMed) on an edge node
        for s in net.symbolics() {
            let dest = net
                .topology()
                .nodes()
                .find(|&v| net.topology().name(v).starts_with("edge-"))
                .unwrap();
            env.bind(s.name(), Value::bv(dest.index() as u64, 32));
        }
        let fast = simulate(&net, &env, 16).expect("fast path simulates");
        let interpreted = simulate_interpreted(&net, &env, 16).expect("term path simulates");
        assert_eq!(fast.converged_at(), interpreted.converged_at(), "{name}");
        assert_eq!(fast.states(), interpreted.states(), "{name}");
    }
}
