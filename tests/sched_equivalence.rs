//! Scheduler-equivalence properties: the verification *verdict* is a pure
//! function of `(network, interface, property)` — never of how the pile of
//! per-node conditions was drained. Work-stealing thread counts and shard
//! partitions must all reproduce the same failing-node sets on the same
//! sabotaged instance.

use std::collections::BTreeSet;

use proptest::prelude::*;
use timepiece::core::check::{CheckOptions, CheckReport, ModularChecker};
use timepiece::core::{NodeAnnotations, Temporal};
use timepiece::nets::reach::ReachBench;
use timepiece::nets::BenchInstance;
use timepiece::sched::cost::{cost_striped, plan_adaptive, CostModel};
use timepiece::sched::ShardPlan;

/// SpReach k=4 (20 nodes) with the nodes selected by `mask` sabotaged to
/// claim they never hold a route — failures then appear at every sabotaged
/// node that obtains one, and at neighbors whose conditions assumed it.
fn sabotaged_instance(mask: u32) -> (BenchInstance, NodeAnnotations) {
    let inst = ReachBench::single_dest(4, 0).build();
    let mut interface = inst.interface.clone();
    for v in inst.network.topology().nodes() {
        if mask & (1 << v.index()) != 0 {
            interface.set(v, Temporal::globally(|r| r.clone().is_some().not()));
        }
    }
    (inst, interface)
}

fn failing_nodes(report: &CheckReport) -> BTreeSet<String> {
    report.failures().iter().map(|f| f.node_name.clone()).collect()
}

proptest! {
    // each case runs five full modular checks; keep the count small
    #![proptest_config(ProptestConfig { cases: 6, rng_seed: 0x5ced_0001 })]

    #[test]
    fn threads_and_shards_agree_on_failing_nodes(mask in 1u32..(1 << 20)) {
        let (inst, interface) = sabotaged_instance(mask);
        let topology = inst.network.topology();

        let reference = ModularChecker::new(CheckOptions {
            threads: Some(1),
            ..CheckOptions::default()
        })
        .check(&inst.network, &interface, &inst.property)
        .expect("instance encodes");
        let expected = failing_nodes(&reference);
        prop_assert!(!expected.is_empty(), "a sabotaged instance must fail somewhere");

        for threads in [1usize, 4] {
            for shards in [1usize, 3] {
                let checker = ModularChecker::new(CheckOptions {
                    threads: Some(threads),
                    ..CheckOptions::default()
                });
                let plan = ShardPlan::by_class(topology.nodes(), shards, |v| {
                    topology.node_class(v).to_owned()
                });
                prop_assert!(plan.covers(topology.nodes()));
                let merged = CheckReport::merge((0..shards).map(|shard| {
                    checker
                        .check_nodes(&inst.network, &interface, &inst.property, plan.nodes_of(shard))
                        .expect("shard encodes")
                }));
                prop_assert_eq!(
                    failing_nodes(&merged),
                    expected.clone(),
                    "threads={} shards={} must match the reference verdict",
                    threads,
                    shards
                );
                prop_assert_eq!(merged.node_durations().len(), topology.node_count());
            }
        }
    }
}

proptest! {
    // pure planning, no solver: cheap enough for a wider net
    #![proptest_config(ProptestConfig { cases: 32, rng_seed: 0x5ced_0002 })]

    // Both planners must partition the node set — every node in exactly one
    // shard — for any shard count and any (positive) per-class cost model.
    #[test]
    fn striped_and_adaptive_plans_partition_the_nodes(
        half_k in 2usize..4,
        shards in 1usize..8,
        core in 1u32..300,
        aggregation in 1u32..300,
        edge in 1u32..300,
    ) {
        let k = 2 * half_k; // fattree parameter must be even: k in {4, 6}
        let inst = ReachBench::single_dest(k, 0).build();
        let topology = inst.network.topology();
        let class = |v| topology.node_class(v).to_owned();
        // costs in deci-seconds: the shimmed proptest has no float ranges
        let model = CostModel::fit(
            [
                ("core".to_owned(), f64::from(core) / 10.0),
                ("agg".to_owned(), f64::from(aggregation) / 10.0),
                ("edge".to_owned(), f64::from(edge) / 10.0),
            ],
            ["property".to_owned()],
        );
        for costed in [
            cost_striped(topology.nodes(), shards, class, &CostModel::uniform()),
            plan_adaptive(topology.nodes(), shards, class, &model),
        ] {
            prop_assert_eq!(costed.plan.shard_count(), shards);
            prop_assert_eq!(costed.predicted.len(), shards);
            prop_assert!(costed.plan.covers(topology.nodes()));
            let assigned: usize =
                (0..shards).map(|s| costed.plan.nodes_of(s).len()).sum();
            prop_assert_eq!(assigned, topology.node_count());
        }
    }
}

/// The full wire drill: a coordinator and two loopback TCP workers must
/// reproduce exactly the failing-node set of a single-process check on the
/// same sabotaged instance — under the striped plan and under an adaptive
/// plan whose skewed cost model forces uneven shards.
#[test]
fn tcp_loopback_distributed_matches_single_process() {
    use timepiece_bench::{
        run_row_distributed, run_worker, BenchKind, DistOptions, PlanChoice, SweepOptions,
        WorkerExit, WorkerOptions,
    };

    let mask = 0b0010_0100_1001u32;
    let (inst, interface) = sabotaged_instance(mask);
    let topology = inst.network.topology();
    let reference = ModularChecker::new(CheckOptions::default())
        .check(&inst.network, &interface, &inst.property)
        .expect("instance encodes");
    let expected = failing_nodes(&reference);
    assert!(!expected.is_empty(), "the sabotaged instance must fail somewhere");

    // ship the same sabotage to every worker by node name
    let sabotage: Vec<String> = topology
        .nodes()
        .filter(|v| mask & (1 << v.index()) != 0)
        .map(|v| topology.name(v).to_owned())
        .collect();

    // two real TCP workers on ephemeral loopback ports, serving one session
    // per distributed row below, then exiting via the session backstop
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..2 {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        addrs.push(listener.local_addr().expect("local addr").to_string());
        handles.push(std::thread::spawn(move || {
            run_worker(listener, &WorkerOptions { max_sessions: Some(2), die_after: None })
                .expect("worker io")
        }));
    }

    let kind = BenchKind::parse("SpReach").expect("registered");
    let options = SweepOptions {
        timeout: std::time::Duration::from_secs(60),
        run_monolithic: false,
        threads: Some(1),
    };
    let dist = DistOptions { sabotage, ..DistOptions::default() };
    let skewed = CostModel::fit(
        [("core".to_owned(), 8.0), ("agg".to_owned(), 2.0), ("edge".to_owned(), 1.0)],
        ["loopback-test".to_owned()],
    );
    for choice in [PlanChoice::Striped, PlanChoice::Adaptive(skewed)] {
        let row = run_row_distributed(kind, 4, &options, 3, &addrs, &choice, &dist)
            .expect("distributed row completes");
        let got: BTreeSet<String> = row.failing.iter().cloned().collect();
        assert_eq!(got, expected, "TCP workers must reproduce the single-process verdict");
        assert_eq!(row.tp.outcome(), "failed", "a sabotaged row must not verify");
    }
    for handle in handles {
        assert_eq!(handle.join().expect("worker thread"), WorkerExit::SessionLimit);
    }
}
