//! Scheduler-equivalence properties: the verification *verdict* is a pure
//! function of `(network, interface, property)` — never of how the pile of
//! per-node conditions was drained. Work-stealing thread counts and shard
//! partitions must all reproduce the same failing-node sets on the same
//! sabotaged instance.

use std::collections::BTreeSet;

use proptest::prelude::*;
use timepiece::core::check::{CheckOptions, CheckReport, ModularChecker};
use timepiece::core::{NodeAnnotations, Temporal};
use timepiece::nets::reach::ReachBench;
use timepiece::nets::BenchInstance;
use timepiece::sched::ShardPlan;

/// SpReach k=4 (20 nodes) with the nodes selected by `mask` sabotaged to
/// claim they never hold a route — failures then appear at every sabotaged
/// node that obtains one, and at neighbors whose conditions assumed it.
fn sabotaged_instance(mask: u32) -> (BenchInstance, NodeAnnotations) {
    let inst = ReachBench::single_dest(4, 0).build();
    let mut interface = inst.interface.clone();
    for v in inst.network.topology().nodes() {
        if mask & (1 << v.index()) != 0 {
            interface.set(v, Temporal::globally(|r| r.clone().is_some().not()));
        }
    }
    (inst, interface)
}

fn failing_nodes(report: &CheckReport) -> BTreeSet<String> {
    report.failures().iter().map(|f| f.node_name.clone()).collect()
}

proptest! {
    // each case runs five full modular checks; keep the count small
    #![proptest_config(ProptestConfig { cases: 6, rng_seed: 0x5ced_0001 })]

    #[test]
    fn threads_and_shards_agree_on_failing_nodes(mask in 1u32..(1 << 20)) {
        let (inst, interface) = sabotaged_instance(mask);
        let topology = inst.network.topology();

        let reference = ModularChecker::new(CheckOptions {
            threads: Some(1),
            ..CheckOptions::default()
        })
        .check(&inst.network, &interface, &inst.property)
        .expect("instance encodes");
        let expected = failing_nodes(&reference);
        prop_assert!(!expected.is_empty(), "a sabotaged instance must fail somewhere");

        for threads in [1usize, 4] {
            for shards in [1usize, 3] {
                let checker = ModularChecker::new(CheckOptions {
                    threads: Some(threads),
                    ..CheckOptions::default()
                });
                let plan = ShardPlan::by_class(topology.nodes(), shards, |v| {
                    topology.node_class(v).to_owned()
                });
                prop_assert!(plan.covers(topology.nodes()));
                let merged = CheckReport::merge((0..shards).map(|shard| {
                    checker
                        .check_nodes(&inst.network, &interface, &inst.property, plan.nodes_of(shard))
                        .expect("shard encodes")
                }));
                prop_assert_eq!(
                    failing_nodes(&merged),
                    expected.clone(),
                    "threads={} shards={} must match the reference verdict",
                    threads,
                    shards
                );
                prop_assert_eq!(merged.node_durations().len(), topology.node_count());
            }
        }
    }
}
