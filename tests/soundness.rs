//! Property-based tests of the paper's metatheory (§3):
//!
//! * **Completeness** (Theorem 3.3): for a closed network, the exact
//!   stepwise interface `A(v)(t) = {σ(v)(t)}` built from a simulation trace
//!   always satisfies the initial and inductive conditions.
//! * **Soundness** (Theorem 3.1, contrapositive): an interface that
//!   *excludes* a state the simulator actually reaches can never pass the
//!   checker — if it did, the soundness theorem would be violated.
//!
//! Networks are random boolean-reachability instances: random connected
//! topologies, a random originating node, and random per-edge drop filters.

use proptest::prelude::*;
use timepiece::algebra::{Network, NetworkBuilder};
use timepiece::core::check::{CheckOptions, ModularChecker};
use timepiece::core::{NodeAnnotations, Temporal};
use timepiece::expr::{Env, Expr, Type, Value};
use timepiece::sim::simulate;
use timepiece::topology::{NodeId, Topology};

/// A randomly generated boolean-reachability network description.
#[derive(Debug, Clone)]
struct RandomNet {
    nodes: usize,
    extra_edges: Vec<(usize, usize)>,
    origin: usize,
    dropped_edges: Vec<bool>,
}

fn random_net() -> impl Strategy<Value = RandomNet> {
    (2usize..6)
        .prop_flat_map(|nodes| {
            let edges = proptest::collection::vec((0..nodes, 0..nodes), 0..6);
            let origin = 0..nodes;
            (Just(nodes), edges, origin)
        })
        .prop_flat_map(|(nodes, extra_edges, origin)| {
            // enough drop flags for path edges + extras (deduped later)
            let max_edges = 2 * (nodes - 1) + extra_edges.len();
            let drops = proptest::collection::vec(any::<bool>(), max_edges);
            (Just(nodes), Just(extra_edges), Just(origin), drops)
        })
        .prop_map(|(nodes, extra_edges, origin, dropped_edges)| RandomNet {
            nodes,
            extra_edges,
            origin,
            dropped_edges,
        })
}

fn build(desc: &RandomNet) -> Network {
    let mut g = Topology::new();
    let ids: Vec<NodeId> = (0..desc.nodes).map(|i| g.add_node(format!("v{i}"))).collect();
    // connected backbone
    for w in ids.windows(2) {
        g.add_undirected(w[0], w[1]);
    }
    for &(a, b) in &desc.extra_edges {
        if a != b && !g.succs(ids[a]).contains(&ids[b]) {
            g.add_edge(ids[a], ids[b]);
        }
    }
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let mut builder = NetworkBuilder::new(g, Type::Bool)
        .merge(|a, b| a.clone().or(b.clone()))
        .init(ids[desc.origin], Expr::bool(true));
    for (i, (u, v)) in edges.into_iter().enumerate() {
        let dropped = desc.dropped_edges.get(i).copied().unwrap_or(false);
        builder =
            builder.transfer((u, v), move |r| if dropped { Expr::bool(false) } else { r.clone() });
    }
    builder.build().expect("random reach network is well-typed")
}

/// Per-node value sequences up to one step past convergence.
fn node_traces(net: &Network) -> Vec<Vec<Value>> {
    let trace = simulate(net, &Env::new(), 64).expect("closed network simulates");
    assert!(trace.converged_at().is_some(), "monotone reach network converges");
    let horizon = trace.states().len();
    net.topology()
        .nodes()
        .map(|v| (0..horizon).map(|t| trace.state(v, t).clone()).collect())
        .collect()
}

proptest! {
    // The explicit rng_seed pins every generated network: CI runs are
    // reproducible and a failure here always replays locally.
    #![proptest_config(ProptestConfig { cases: 12, rng_seed: 0x0071_313e_9ece_0001 })]

    /// Theorem 3.3: exact trace interfaces always verify.
    #[test]
    fn exact_trace_interfaces_always_verify(desc in random_net()) {
        let net = build(&desc);
        let traces = node_traces(&net);
        let interface = NodeAnnotations::from_fn(net.topology(), |v| {
            Temporal::from_trace(&traces[v.index()])
        });
        let report = ModularChecker::new(CheckOptions::default())
            .check(&net, &interface, &interface)
            .expect("check runs");
        prop_assert!(report.is_verified(), "failures: {:?}", report.failures());
    }

    /// Theorem 3.1 (contrapositive): interfaces excluding a reached state
    /// are always rejected.
    #[test]
    fn interfaces_excluding_reached_states_are_rejected(
        desc in random_net(),
        victim in any::<prop::sample::Index>(),
        time in any::<prop::sample::Index>(),
    ) {
        let net = build(&desc);
        let traces = node_traces(&net);
        let horizon = traces[0].len();
        let v = victim.index(net.topology().node_count());
        let t = time.index(horizon);
        // exact interfaces everywhere, except at (v, t): claim the opposite
        let interface = NodeAnnotations::from_fn(net.topology(), |u| {
            if u.index() == v {
                let mut lied = traces[u.index()].clone();
                let actual = lied[t].as_bool().expect("bool route");
                lied[t] = Value::Bool(!actual);
                Temporal::from_trace(&lied)
            } else {
                Temporal::from_trace(&traces[u.index()])
            }
        });
        let report = ModularChecker::new(CheckOptions::default())
            .check(&net, &interface, &interface)
            .expect("check runs");
        prop_assert!(
            !report.is_verified(),
            "an interface excluding σ({v})({t}) was accepted — soundness violated"
        );
    }

    /// The monolithic baseline accepts what simulation guarantees: the
    /// simulated stable state is the least fixpoint of the boolean reach
    /// equations, so every stable state covers it. (Note the baseline could
    /// NOT check the exact interfaces — self-sustaining loops admit larger
    /// stable states, the very imprecision §2 discusses.)
    #[test]
    fn monolithic_accepts_least_fixpoint_lower_bound(desc in random_net()) {
        let net = build(&desc);
        let traces = node_traces(&net);
        let property = NodeAnnotations::from_fn(net.topology(), |v| {
            let reached = traces[v.index()]
                .last()
                .and_then(Value::as_bool)
                .expect("bool route");
            if reached {
                Temporal::globally(|r| r.clone())
            } else {
                Temporal::any()
            }
        });
        let report = timepiece::core::monolithic::check_monolithic(&net, &property, None)
            .expect("check runs");
        prop_assert!(report.outcome.is_verified());
    }
}
